"""Intraprocedural control-flow graphs and forward dataflow over ``ast``.

This is the flow-aware core behind the replint v2 concurrency rules
(REP008-REP012 in :mod:`repro.devtools.concurrency`).  The single-pass
AST rules in :mod:`repro.devtools.rules` answer "does this syntax occur";
the questions the concurrency pack asks -- "is this lock released on
*every* path out of the function", "which locks are held *at the moment*
this one is acquired" -- need paths, not syntax.  This module provides
just enough machinery to answer them:

* :func:`build_cfg` lowers one function body to a CFG whose nodes are
  single *events* (a statement, a ``with``-item entry, or a ``with``-item
  exit) so transfer functions never have to re-discover structure.
* :func:`solve` runs any :class:`ForwardAnalysis` to fixpoint with a
  worklist; unreachable nodes keep state ``None``.
* :class:`ReachingDefinitions` and :class:`HeldSetAnalysis` are the two
  analyses the rule pack composes: the first supports local "what was
  this name assigned from" queries, the second is a gen/kill set lattice
  with a selectable join (union for may-analyses such as leak detection,
  intersection for must-analyses such as lock-order edges).

Design limits, on purpose: the CFG is intraprocedural, models explicit
``raise`` (routed to enclosing handlers, else to exit), approximates
implicit exceptions by edging every statement inside a ``try`` body to
its handlers, and routes abrupt exits (``return``/``break``/``raise``)
through enclosing ``with`` exits and ``finally`` blocks.  ``finally``
blocks are shared by all paths through them, which over-approximates
successor sets -- sound for may-analyses, conservative for must-analyses.
Nested function and lambda bodies are *not* part of the enclosing CFG:
they execute at call time, not definition time.
"""

from __future__ import annotations

import ast
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Generic,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
    Union,
)

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

# Node kinds.  ``stmt`` anchors one ast.stmt; ``with_enter``/``with_exit``
# bracket a single withitem (so lock acquisition/release can be modelled
# without re-parsing the With statement inside every transfer function).
ENTRY = "entry"
EXIT = "exit"
STMT = "stmt"
WITH_ENTER = "with_enter"
WITH_EXIT = "with_exit"


class CFNode:
    """One CFG event: entry/exit marker, statement, or with-item bracket."""

    __slots__ = ("index", "kind", "stmt", "item", "succs")

    def __init__(
        self,
        index: int,
        kind: str,
        stmt: Optional[ast.stmt] = None,
        item: Optional[ast.withitem] = None,
    ) -> None:
        self.index = index
        self.kind = kind
        self.stmt = stmt
        self.item = item
        self.succs: List[int] = []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = self.kind
        if self.stmt is not None:
            label += f"@{getattr(self.stmt, 'lineno', '?')}"
        return f"CFNode({self.index}, {label}, succs={self.succs})"


class CFG:
    """Control-flow graph for one function body."""

    __slots__ = ("function", "nodes", "entry", "exit")

    def __init__(self, function: FunctionNode) -> None:
        self.function = function
        self.nodes: List[CFNode] = []
        self.entry = self._new(ENTRY)
        self.exit = self._new(EXIT)

    def _new(
        self,
        kind: str,
        stmt: Optional[ast.stmt] = None,
        item: Optional[ast.withitem] = None,
    ) -> CFNode:
        node = CFNode(len(self.nodes), kind, stmt, item)
        self.nodes.append(node)
        return node

    def add_edge(self, src: CFNode, dst: CFNode) -> None:
        if dst.index not in src.succs:
            src.succs.append(dst.index)

    def predecessors(self) -> Dict[int, List[int]]:
        preds: Dict[int, List[int]] = {node.index: [] for node in self.nodes}
        for node in self.nodes:
            for succ in node.succs:
                preds[succ].append(node.index)
        return preds

    def iter_nodes(self, kind: Optional[str] = None) -> Iterator[CFNode]:
        for node in self.nodes:
            if kind is None or node.kind == kind:
                yield node


class _Frame:
    """Construction-time record of an enclosing region to unwind through."""

    __slots__ = (
        "kind",
        "items",
        "handlers",
        "break_out",
        "continue_to",
        "abrupt",
    )

    def __init__(
        self,
        kind: str,
        items: Sequence[ast.withitem] = (),
        handlers: Sequence[CFNode] = (),
        continue_to: Optional[CFNode] = None,
    ) -> None:
        self.kind = kind  # "with" | "try" | "loop" | "finally"
        self.items = list(items)
        self.handlers = list(handlers)
        self.break_out: List[CFNode] = []
        self.continue_to = continue_to
        #: for "finally" frames: abrupt exits parked at the finally's
        #: entrance, with the kind of continuation they still owe.
        self.abrupt: List[Tuple[CFNode, str]] = []


class _CFGBuilder:
    def __init__(self, function: FunctionNode) -> None:
        self.cfg = CFG(function)
        self.frames: List[_Frame] = []
        # All stmt nodes created inside the currently-open try bodies, so
        # implicit-exception edges (any stmt may raise) can be added.
        self.try_body_nodes: List[List[CFNode]] = []
        # ``with`` statement source: maps each with_enter node to the
        # matching exit factory so unwinding can synthesize fresh exits.

    def build(self) -> CFG:
        outs = self._visit_body(self.cfg.function.body, [self.cfg.nodes[self.cfg.entry.index]])
        for node in outs:
            self.cfg.add_edge(node, self.cfg.exit)
        return self.cfg

    # -- plumbing ------------------------------------------------------

    def _link(self, preds: Sequence[CFNode], node: CFNode) -> None:
        for pred in preds:
            self.cfg.add_edge(pred, node)

    def _stmt_node(self, stmt: ast.stmt) -> CFNode:
        node = self.cfg._new(STMT, stmt)
        for bucket in self.try_body_nodes:
            bucket.append(node)
        return node

    def _route_abrupt(self, src: CFNode, kind: str) -> None:
        """Route an abrupt exit (``return``/``raise``/``break``/``continue``).

        Walks enclosing frames inner-to-outer, synthesizing ``with``-exit
        cleanup nodes as it goes, until some frame consumes the exit: a
        ``try`` with handlers consumes a ``raise``, a loop consumes
        ``break``/``continue``, and a ``finally`` parks *any* abrupt exit
        at its entrance (``_visit_try`` re-routes it onward from the
        finally's out-nodes once the finally body exists).  If nothing
        consumes it, the edge goes to function exit.
        """
        current = src
        for frame in reversed(self.frames):
            if frame.kind == "with":
                for item in reversed(frame.items):
                    exit_node = self.cfg._new(WITH_EXIT, None, item)
                    self.cfg.add_edge(current, exit_node)
                    current = exit_node
                continue
            if frame.kind == "loop" and kind in ("break", "continue"):
                if kind == "break":
                    frame.break_out.append(current)
                elif frame.continue_to is not None:
                    self.cfg.add_edge(current, frame.continue_to)
                return
            if frame.kind == "try" and kind == "raise" and frame.handlers:
                for handler in frame.handlers:
                    self.cfg.add_edge(current, handler)
                return
            if frame.kind == "finally":
                frame.abrupt.append((current, kind))
                return
        self.cfg.add_edge(current, self.cfg.exit)

    # -- statement dispatch --------------------------------------------

    def _visit_body(self, body: Sequence[ast.stmt], preds: List[CFNode]) -> List[CFNode]:
        current = list(preds)
        for stmt in body:
            if not current:
                # Dead code after return/raise/break: still build nodes so
                # diagnostics can anchor there, but leave them unreachable.
                current = []
            current = self._visit_stmt(stmt, current)
        return current

    def _visit_stmt(self, stmt: ast.stmt, preds: List[CFNode]) -> List[CFNode]:
        if isinstance(stmt, ast.If):
            return self._visit_if(stmt, preds)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._visit_loop(stmt, preds)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._visit_with(stmt, preds)
        if isinstance(stmt, ast.Try):
            return self._visit_try(stmt, preds)
        if isinstance(stmt, (ast.Return, ast.Raise, ast.Break, ast.Continue)):
            node = self._stmt_node(stmt)
            self._link(preds, node)
            kind = {
                ast.Return: "return",
                ast.Raise: "raise",
                ast.Break: "break",
                ast.Continue: "continue",
            }[type(stmt)]
            self._route_abrupt(node, kind)
            return []
        # Plain statement (incl. nested FunctionDef/ClassDef: their bodies
        # run at call time, not here, so they are opaque single events).
        node = self._stmt_node(stmt)
        self._link(preds, node)
        return [node]

    def _visit_if(self, stmt: ast.If, preds: List[CFNode]) -> List[CFNode]:
        cond = self._stmt_node(stmt)
        self._link(preds, cond)
        then_out = self._visit_body(stmt.body, [cond])
        else_out = self._visit_body(stmt.orelse, [cond]) if stmt.orelse else [cond]
        return then_out + else_out

    def _visit_loop(
        self, stmt: Union[ast.While, ast.For, ast.AsyncFor], preds: List[CFNode]
    ) -> List[CFNode]:
        head = self._stmt_node(stmt)
        self._link(preds, head)
        frame = _Frame("loop", continue_to=head)
        self.frames.append(frame)
        body_out = self._visit_body(stmt.body, [head])
        self.frames.pop()
        for node in body_out:
            self.cfg.add_edge(node, head)
        outs: List[CFNode] = [head] + frame.break_out
        if stmt.orelse:
            outs = self._visit_body(stmt.orelse, outs)
        return outs

    def _visit_with(
        self, stmt: Union[ast.With, ast.AsyncWith], preds: List[CFNode]
    ) -> List[CFNode]:
        current = list(preds)
        enters: List[CFNode] = []
        for item in stmt.items:
            enter = self.cfg._new(WITH_ENTER, stmt, item)
            for bucket in self.try_body_nodes:
                bucket.append(enter)
            self._link(current, enter)
            current = [enter]
            enters.append(enter)
        frame = _Frame("with", items=stmt.items)
        self.frames.append(frame)
        body_out = self._visit_body(stmt.body, current)
        self.frames.pop()
        for item in reversed(stmt.items):
            exit_node = self.cfg._new(WITH_EXIT, stmt, item)
            self._link(body_out, exit_node)
            body_out = [exit_node]
        return body_out

    def _visit_try(self, stmt: ast.Try, preds: List[CFNode]) -> List[CFNode]:
        # Handler entry nodes are created first so raises inside the body
        # can target them.
        handler_entries: List[CFNode] = []
        for handler in stmt.handlers:
            node = self.cfg._new(STMT, handler)  # type: ignore[arg-type]
            for bucket in self.try_body_nodes:
                bucket.append(node)
            handler_entries.append(node)

        # The finally frame sits *outside* the try frame: a raise in the
        # body prefers the handlers; returns in the body and raises in the
        # handler bodies park at the finally.
        finally_frame: Optional[_Frame] = None
        if stmt.finalbody:
            finally_frame = _Frame("finally")
            self.frames.append(finally_frame)

        frame = _Frame("try", handlers=handler_entries)
        self.frames.append(frame)
        bucket: List[CFNode] = []
        self.try_body_nodes.append(bucket)
        body_out = self._visit_body(stmt.body, preds)
        self.try_body_nodes.pop()
        self.frames.pop()

        # Any statement in the try body may raise: edge each to every
        # handler.  Also edge the try's own predecessors, covering an
        # exception in the very first statement.
        if handler_entries:
            sources: List[CFNode] = list(preds) + bucket
            for src in sources:
                for handler in handler_entries:
                    self.cfg.add_edge(src, handler)

        handler_outs: List[CFNode] = []
        for handler, entry in zip(stmt.handlers, handler_entries):
            handler_outs.extend(self._visit_body(handler.body, [entry]))

        else_out = self._visit_body(stmt.orelse, body_out) if stmt.orelse else body_out
        merged = else_out + handler_outs

        if finally_frame is not None:
            self.frames.pop()  # pop before building the finally body
            parked = finally_frame.abrupt
            # The finally body is shared by every path through it: the
            # normal continuation and every parked abrupt exit all enter
            # it, which over-approximates successor sets (sound for
            # may-analyses, conservative for must-analyses).
            merged = self._visit_body(
                stmt.finalbody, merged + [node for node, _kind in parked]
            )
            # Each parked exit still owes its continuation: re-route it
            # from the finally's out-nodes in the *enclosing* context.
            for kind in sorted({k for _node, k in parked}):
                for out in merged:
                    self._route_abrupt(out, kind)
        return merged


def build_cfg(function: FunctionNode) -> CFG:
    """Build the control-flow graph for one (async) function body."""
    return _CFGBuilder(function).build()


# ---------------------------------------------------------------------------
# Forward dataflow
# ---------------------------------------------------------------------------

S = TypeVar("S")


class ForwardAnalysis(Generic[S]):
    """A forward dataflow problem over :class:`CFG` nodes.

    State flows along edges; ``None`` means "unreachable" and is the
    identity of :meth:`join`.  States should be immutable (frozensets,
    tuples) so fixpoint detection by equality is cheap and correct.
    """

    def initial(self) -> S:
        raise NotImplementedError

    def join(self, a: S, b: S) -> S:
        raise NotImplementedError

    def transfer(self, node: CFNode, state: S) -> S:
        raise NotImplementedError


def solve(cfg: CFG, analysis: ForwardAnalysis[S]) -> Tuple[Dict[int, Optional[S]], Dict[int, Optional[S]]]:
    """Run ``analysis`` to fixpoint; returns (in_states, out_states).

    ``in_states[i]``/``out_states[i]`` is the state just before/after node
    ``i``, or ``None`` when the node is unreachable from entry.
    """
    in_states: Dict[int, Optional[S]] = {node.index: None for node in cfg.nodes}
    out_states: Dict[int, Optional[S]] = {node.index: None for node in cfg.nodes}
    in_states[cfg.entry.index] = analysis.initial()

    worklist: List[int] = [cfg.entry.index]
    enqueued = {cfg.entry.index}
    while worklist:
        index = worklist.pop()
        enqueued.discard(index)
        node = cfg.nodes[index]
        state = in_states[index]
        if state is None:
            continue
        out = analysis.transfer(node, state)
        if out == out_states[index] and out_states[index] is not None:
            continue
        out_states[index] = out
        for succ in node.succs:
            existing = in_states[succ]
            merged = out if existing is None else analysis.join(existing, out)
            if merged != in_states[succ]:
                in_states[succ] = merged
                if succ not in enqueued:
                    worklist.append(succ)
                    enqueued.add(succ)
    return in_states, out_states


# ---------------------------------------------------------------------------
# Reaching definitions
# ---------------------------------------------------------------------------

#: A definition: (name, node index of the defining event).
Definition = Tuple[str, int]
ReachingState = FrozenSet[Definition]


def assigned_names(stmt: ast.stmt) -> List[str]:
    """Simple names bound by this statement (targets of =, for, as, def)."""
    names: List[str] = []

    def collect(target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            names.append(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                collect(element)
        elif isinstance(target, ast.Starred):
            collect(target.value)

    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            collect(target)
    elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
        collect(stmt.target)
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        collect(stmt.target)
    elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        names.append(stmt.name)
    elif isinstance(stmt, ast.ExceptHandler) and stmt.name:
        names.append(stmt.name)
    return names


class ReachingDefinitions(ForwardAnalysis[ReachingState]):
    """Classic reaching definitions over simple names.

    ``with ... as name`` binds at the ``with_enter`` event; everything else
    binds at its ``stmt`` event.  Query helpers on the solved result live
    in :meth:`definition_nodes`.
    """

    def __init__(self, cfg: CFG) -> None:
        self.cfg = cfg

    def initial(self) -> ReachingState:
        params: List[Definition] = []
        args = self.cfg.function.args
        for arg in (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        ):
            params.append((arg.arg, self.cfg.entry.index))
        if args.vararg is not None:
            params.append((args.vararg.arg, self.cfg.entry.index))
        if args.kwarg is not None:
            params.append((args.kwarg.arg, self.cfg.entry.index))
        return frozenset(params)

    def join(self, a: ReachingState, b: ReachingState) -> ReachingState:
        return a | b

    def transfer(self, node: CFNode, state: ReachingState) -> ReachingState:
        bound: List[str] = []
        if node.kind == STMT and node.stmt is not None:
            bound = assigned_names(node.stmt)
        elif node.kind == WITH_ENTER and node.item is not None and node.item.optional_vars is not None:
            target = node.item.optional_vars
            if isinstance(target, ast.Name):
                bound = [target.id]
        if not bound:
            return state
        kill = frozenset(d for d in state if d[0] in bound)
        gen = frozenset((name, node.index) for name in bound)
        return (state - kill) | gen


def definition_nodes(state: Optional[ReachingState], name: str) -> List[int]:
    """Node indices whose definition of ``name`` reaches this state."""
    if state is None:
        return []
    return sorted(index for (defined, index) in state if defined == name)


# ---------------------------------------------------------------------------
# Gen/kill set lattice with selectable join (held locks, resource states)
# ---------------------------------------------------------------------------

Token = str
HeldState = FrozenSet[Token]

MAY = "union"
MUST = "intersection"


class HeldSetAnalysis(ForwardAnalysis[HeldState]):
    """Track a set of held tokens (locks, slots) through the CFG.

    ``acquires(node)``/``releases(node)`` map each CFG event to the tokens
    it takes or drops; the rule pack supplies the vocabulary.  ``join``
    is union for may-held (leak detection: "is there *a* path on which
    this is still held") or intersection for must-held (lock ordering:
    "is this *always* held here").
    """

    def __init__(
        self,
        acquires: Callable[[CFNode], FrozenSet[Token]],
        releases: Callable[[CFNode], FrozenSet[Token]],
        mode: str = MAY,
    ) -> None:
        if mode not in (MAY, MUST):
            raise ValueError(f"mode must be {MAY!r} or {MUST!r}, got {mode!r}")
        self.acquires = acquires
        self.releases = releases
        self.mode = mode

    def initial(self) -> HeldState:
        return frozenset()

    def join(self, a: HeldState, b: HeldState) -> HeldState:
        return (a | b) if self.mode == MAY else (a & b)

    def transfer(self, node: CFNode, state: HeldState) -> HeldState:
        state = state - self.releases(node)
        return state | self.acquires(node)


# ---------------------------------------------------------------------------
# Async-context helpers
# ---------------------------------------------------------------------------


def iter_function_defs(tree: ast.AST) -> Iterator[FunctionNode]:
    """Yield every (async) function definition in the tree, any nesting."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def stmt_header_exprs(stmt: ast.stmt) -> List[ast.AST]:
    """The expressions evaluated *at* this statement's CFG node.

    Compound statements own only their header — an ``if``/``while`` its
    test, a ``for`` its iterable, an except handler its type — because
    their bodies get CFG nodes of their own.  Simple statements own
    their whole subtree.  Nested definitions own nothing: their bodies
    run at call time.
    """
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, ast.ExceptHandler):
        return [stmt.type] if stmt.type is not None else []
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return []
    return [stmt]


def iter_calls(
    root: ast.AST, *, skip_nested: bool = True
) -> Iterator[Tuple[ast.Call, bool]]:
    """Yield ``(call, awaited)`` pairs lexically inside ``root``.

    ``awaited`` is true when the call is the direct operand of an
    ``await``.  With ``skip_nested`` (the default), calls inside nested
    ``def``/``async def``/``lambda`` bodies are skipped -- they run when
    the nested callable runs, not when ``root``'s body does, which is the
    distinction REP008 needs for ``run_in_executor(None, lambda: ...)``.
    """
    root_node = root
    if isinstance(root_node, ast.Call):
        yield (root_node, False)

    def walk(node: ast.AST, awaited: bool) -> Iterator[Tuple[ast.Call, bool]]:
        for child in ast.iter_child_nodes(node):
            if skip_nested and child is not root_node and isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            if isinstance(child, ast.Await):
                if isinstance(child.value, ast.Call):
                    yield (child.value, True)
                    yield from walk(child.value, False)
                else:
                    yield from walk(child.value, False)
                continue
            if isinstance(child, ast.Call):
                yield (child, awaited)
            yield from walk(child, False)

    yield from walk(root_node, False)


def is_async_function(function: FunctionNode) -> bool:
    return isinstance(function, ast.AsyncFunctionDef)
