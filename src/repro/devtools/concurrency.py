"""Flow-aware concurrency rules REP008-REP012.

These rules run on the CFG/dataflow machinery in
:mod:`repro.devtools.flow` and guard the three concurrency-heavy layers
the single-pass rules cannot see: the asyncio serve tier (REP008), lock
discipline anywhere in the library (REP009/REP010), the shared-memory
slot protocol between the parallel/durability engines and their workers
(REP011), and swallowed errors in long-lived loops (REP012).

Vocabulary is heuristic by design: replint never imports the code it
lints, so "is this a lock" is answered by how the object is named and
constructed (``threading.Lock()`` assignments, receivers whose last
component looks like ``*lock*``/``*mutex*``/``*cond*``), and "does this
block" by a catalog of known primitives plus transitive propagation
through the project's own call graph.  Every heuristic is documented in
docs/static-analysis.md; `# replint: disable=REPxxx` with a
justification comment is the escape hatch when the analysis is wrong.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import (
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from . import flow
from .engine import (
    Diagnostic,
    FileContext,
    ProjectIndex,
    ROLE_LIBRARY,
    Rule,
)

_FuncDef = Union[ast.FunctionDef, ast.AsyncFunctionDef]


# ---------------------------------------------------------------------------
# Shared vocabulary helpers
# ---------------------------------------------------------------------------


def _dotted(node: ast.expr) -> Optional[Tuple[str, ...]]:
    """Dotted path of a receiver expression, subscripts elided.

    ``self._free[worker_id].pop`` -> ("self", "_free", "pop").  Returns
    None for anything that is not a Name/Attribute/Subscript chain.
    """
    if isinstance(node, ast.Name):
        return (node.id,)
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        return None if base is None else base + (node.attr,)
    if isinstance(node, ast.Subscript):
        return _dotted(node.value)
    return None


def _display(node: ast.expr) -> str:
    parts = _dotted(node)
    return ".".join(parts) if parts else "<expr>"


#: Receiver names that read as locks (last dotted component).
_LOCKISH_NAME = re.compile(r"(?i)(lock|mutex|cond)")
#: Constructor call names that build locks: threading.Lock(), RLock(),
#: Condition(), Semaphore(), and aliased factories ending in "lock".
_LOCK_CONSTRUCTOR = re.compile(r"(?i)(r?lock|condition|(bounded)?semaphore)$")


def _is_lock_constructor(call: ast.expr) -> bool:
    if not isinstance(call, ast.Call):
        return False
    parts = _dotted(call.func)
    return parts is not None and bool(_LOCK_CONSTRUCTOR.search(parts[-1]))


def module_lock_names(tree: ast.AST) -> Set[Tuple[str, ...]]:
    """Dotted targets assigned from a lock constructor anywhere in the file."""
    names: Set[Tuple[str, ...]] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and _is_lock_constructor(node.value):
            for target in node.targets:
                parts = _dotted(target)
                if parts is not None:
                    names.add(parts)
        elif (
            isinstance(node, ast.AnnAssign)
            and node.value is not None
            and _is_lock_constructor(node.value)
        ):
            parts = _dotted(node.target)
            if parts is not None:
                names.add(parts)
    return names


def _lock_token(
    expr: ast.expr, lock_names: Set[Tuple[str, ...]]
) -> Optional[str]:
    """The lock identity of a receiver, or None when it isn't lock-like."""
    parts = _dotted(expr)
    if parts is None:
        return None
    if parts in lock_names or _LOCKISH_NAME.search(parts[-1]):
        return ".".join(parts)
    return None


def _iter_stmt_calls(stmt: ast.stmt) -> Iterator[Tuple[ast.Call, bool]]:
    """(call, awaited) pairs owned by one CFG statement node.

    Compound heads (``if``/``while``/``for``/handlers) contribute only
    their header expressions: their body statements have CFG nodes of
    their own, and double-attributing a body call to the head would let
    an acquire or release "happen" one node early.
    """
    for root in flow.stmt_header_exprs(stmt):
        yield from flow.iter_calls(root, skip_nested=True)


class _LockEvents:
    """Per-function lock acquire/release events, keyed by CFG node."""

    def __init__(self, fn: _FuncDef, lock_names: Set[Tuple[str, ...]]) -> None:
        self.cfg = flow.build_cfg(fn)
        self.node_acquires: Dict[int, FrozenSet[str]] = {}
        self.node_releases: Dict[int, FrozenSet[str]] = {}
        #: token -> bare ``.acquire()`` call sites (with-scoped excluded).
        self.bare_acquires: Dict[str, List[ast.Call]] = {}
        #: node index -> (token, anchor) acquired there (with or bare).
        self.acquire_anchors: Dict[int, List[Tuple[str, ast.AST]]] = {}
        for node in self.cfg.nodes:
            acquires: Set[str] = set()
            releases: Set[str] = set()
            if node.kind == flow.WITH_ENTER and node.item is not None:
                token = _lock_token(node.item.context_expr, lock_names)
                if token is not None:
                    acquires.add(token)
                    self.acquire_anchors.setdefault(node.index, []).append(
                        (token, node.item.context_expr)
                    )
            elif node.kind == flow.WITH_EXIT and node.item is not None:
                token = _lock_token(node.item.context_expr, lock_names)
                if token is not None:
                    releases.add(token)
            elif node.kind == flow.STMT and node.stmt is not None:
                for call, awaited in _iter_stmt_calls(node.stmt):
                    if awaited or not isinstance(call.func, ast.Attribute):
                        continue
                    if call.func.attr == "acquire":
                        token = _lock_token(call.func.value, lock_names)
                        if token is not None:
                            acquires.add(token)
                            self.bare_acquires.setdefault(token, []).append(call)
                            self.acquire_anchors.setdefault(
                                node.index, []
                            ).append((token, call))
                    elif call.func.attr == "release":
                        token = _lock_token(call.func.value, lock_names)
                        if token is not None:
                            releases.add(token)
            if acquires:
                self.node_acquires[node.index] = frozenset(acquires)
            if releases:
                self.node_releases[node.index] = frozenset(releases)

    def acquires(self, node: flow.CFNode) -> FrozenSet[str]:
        return self.node_acquires.get(node.index, frozenset())

    def releases(self, node: flow.CFNode) -> FrozenSet[str]:
        return self.node_releases.get(node.index, frozenset())

    @property
    def has_lock_events(self) -> bool:
        return bool(self.node_acquires)


def _functions_with_owner(
    tree: ast.AST,
) -> Iterator[Tuple[_FuncDef, Optional[str]]]:
    """Every function def paired with its directly enclosing class name."""
    owners: Dict[int, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            for child in node.body:
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    owners[id(child)] = node.name
    for fn in flow.iter_function_defs(tree):
        yield fn, owners.get(id(fn))


# ---------------------------------------------------------------------------
# REP008: no blocking calls reachable inside async def bodies
# ---------------------------------------------------------------------------

#: (dotted-prefix or exact match) -> why it blocks.  Checked against the
#: call's dotted path after project-function resolution fails.
_BLOCKING_EXACT: Dict[Tuple[str, ...], str] = {
    ("time", "sleep"): "sleeps the whole event loop (time.sleep)",
    ("os", "system"): "blocks on a subprocess (os.system)",
    ("os", "popen"): "blocks on a subprocess (os.popen)",
    ("os", "wait"): "blocks on child processes (os.wait)",
    ("os", "waitpid"): "blocks on child processes (os.waitpid)",
    ("open",): "performs synchronous file I/O (open)",
}
_BLOCKING_PREFIXES: Dict[str, str] = {
    "subprocess": "blocks until a subprocess finishes",
    "socket": "performs synchronous socket I/O",
}

#: method-call heuristics: attr -> (receiver substring, why).
_BLOCKING_METHODS: Dict[str, Tuple[Tuple[str, ...], str]] = {
    "get": (("queue",), "performs a blocking queue get"),
    "join": (
        ("proc", "thread", "worker"),
        "blocks joining a process/thread",
    ),
    "recv": (("sock", "conn", "pipe"), "performs a blocking receive"),
    "recv_bytes": (("sock", "conn", "pipe"), "performs a blocking receive"),
    "accept": (("sock", "server"), "performs a blocking accept"),
    "connect": (("sock", "conn"), "performs a blocking connect"),
    "sendall": (("sock", "conn"), "performs a blocking send"),
    "wait": (
        ("proc", "process", "conn", "connection", "cond"),
        "performs a blocking wait",
    ),
    "urlopen": ((), "performs a synchronous HTTP fetch"),
}


def _direct_blocking_reason(
    call: ast.Call, lock_names: Set[Tuple[str, ...]]
) -> Optional[str]:
    """Why this single call blocks, per the primitive catalog, or None."""
    parts = _dotted(call.func)
    if parts is None:
        return None
    exact = _BLOCKING_EXACT.get(parts)
    if exact is not None:
        return exact
    prefix_reason = _BLOCKING_PREFIXES.get(parts[0])
    if prefix_reason is not None and len(parts) > 1:
        return prefix_reason
    if isinstance(call.func, ast.Attribute):
        attr = call.func.attr
        if attr == "acquire":
            if _lock_token(call.func.value, lock_names) is not None:
                return "blocks on an un-awaited lock acquire"
            return None
        entry = _BLOCKING_METHODS.get(attr)
        if entry is not None:
            substrings, why = entry
            receiver = ".".join(parts[:-1]).lower()
            if not substrings or any(s in receiver for s in substrings):
                return why
    return None


class _FnRecord:
    """One indexed function: where it lives and what it calls."""

    __slots__ = ("node", "path", "owner", "blocking")

    def __init__(self, node: _FuncDef, path: str, owner: Optional[str]) -> None:
        self.node = node
        self.path = path
        self.owner = owner
        #: "why it blocks" once classified, else None.
        self.blocking: Optional[str] = None


def _local_ctor_types(fn: _FuncDef, known: Set[str]) -> Dict[str, str]:
    """Local name -> class name, for ``x = Cls(...)`` / ``with Cls() as x``."""
    out: Dict[str, str] = {}
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            callee = node.value.func
            if isinstance(callee, ast.Name) and callee.id in known:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        out[target.id] = callee.id
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if (
                    isinstance(item.context_expr, ast.Call)
                    and isinstance(item.context_expr.func, ast.Name)
                    and item.context_expr.func.id in known
                    and isinstance(item.optional_vars, ast.Name)
                ):
                    out[item.optional_vars.id] = item.context_expr.func.id
    return out


class BlockingInAsyncRule(Rule):
    """REP008: nothing reachable from an ``async def`` may block the loop."""

    rule_id = "REP008"
    title = "no blocking calls reachable inside async def bodies"
    rationale = (
        "One synchronous sleep, subprocess, queue get, or file read on "
        "the serve event loop stalls every in-flight request and "
        "invalidates the p99 latency the serve tier advertises.  "
        "Blocking work belongs in `await loop.run_in_executor(...)`."
    )
    roles = (ROLE_LIBRARY,)

    def check_project(
        self, project: ProjectIndex, contexts: Sequence[FileContext]
    ) -> Iterator[Diagnostic]:
        library = [ctx for ctx in contexts if ctx.role in self.roles]

        # Pass 1: index every function and seed direct blocking reasons.
        by_name: Dict[str, List[_FnRecord]] = {}
        by_method: Dict[Tuple[str, str], _FnRecord] = {}
        records: List[_FnRecord] = []
        lock_names_by_path: Dict[str, Set[Tuple[str, ...]]] = {}
        for ctx in library:
            lock_names = module_lock_names(ctx.tree)
            lock_names_by_path[ctx.path] = lock_names
            for fn, owner in _functions_with_owner(ctx.tree):
                record = _FnRecord(fn, ctx.path, owner)
                records.append(record)
                if owner is None:
                    by_name.setdefault(fn.name, []).append(record)
                else:
                    by_method[(owner, fn.name)] = record
                if isinstance(fn, ast.AsyncFunctionDef):
                    continue  # async callees are awaited, not blocking
                for call, awaited in flow.iter_calls(fn, skip_nested=True):
                    if awaited:
                        continue
                    reason = _direct_blocking_reason(call, lock_names)
                    if reason is not None:
                        record.blocking = reason
                        break

        known_classes = set(project.classes) | {cls for cls, _ in by_method}

        def resolve(
            call: ast.Call, record: _FnRecord, ctor_types: Dict[str, str]
        ) -> Optional[_FnRecord]:
            func = call.func
            if isinstance(func, ast.Name):
                candidates = by_name.get(func.id, [])
                same_file = [c for c in candidates if c.path == record.path]
                if same_file:
                    return same_file[0]
                if len(candidates) == 1:
                    return candidates[0]
                return None
            if isinstance(func, ast.Attribute):
                receiver = func.value
                cls: Optional[str] = None
                if isinstance(receiver, ast.Name):
                    if receiver.id == "self":
                        cls = record.owner
                    else:
                        cls = ctor_types.get(receiver.id)
                if cls is None:
                    return None
                for info in project.iter_subclass_chain(cls):
                    method = by_method.get((info.name, func.attr))
                    if method is not None:
                        return method
                return by_method.get((cls, func.attr))
            return None

        # Pass 2: propagate blocking through the project call graph to a
        # fixpoint (sync functions only; awaited calls never count).
        ctor_cache: Dict[int, Dict[str, str]] = {}
        changed = True
        while changed:
            changed = False
            for record in records:
                if record.blocking is not None or isinstance(
                    record.node, ast.AsyncFunctionDef
                ):
                    continue
                ctor_types = ctor_cache.get(id(record.node))
                if ctor_types is None:
                    ctor_types = _local_ctor_types(record.node, known_classes)
                    ctor_cache[id(record.node)] = ctor_types
                for call, awaited in flow.iter_calls(
                    record.node, skip_nested=True
                ):
                    if awaited:
                        continue
                    callee = resolve(call, record, ctor_types)
                    if callee is not None and callee.blocking is not None:
                        record.blocking = (
                            f"calls {_display(call.func)}(), which "
                            f"{callee.blocking}"
                        )
                        changed = True
                        break

        # Pass 3: flag blocking calls lexically inside async bodies.
        for ctx in library:
            lock_names = lock_names_by_path[ctx.path]
            for fn, owner in _functions_with_owner(ctx.tree):
                if not isinstance(fn, ast.AsyncFunctionDef):
                    continue
                record = _FnRecord(fn, ctx.path, owner)
                ctor_types = self._reaching_ctor_types(fn, known_classes)
                for call, awaited in flow.iter_calls(fn, skip_nested=True):
                    if awaited:
                        continue
                    reason = _direct_blocking_reason(call, lock_names)
                    if reason is None:
                        callee = resolve(call, record, ctor_types)
                        if callee is not None and callee.blocking is not None:
                            reason = callee.blocking
                    if reason is not None:
                        yield self.diagnostic(
                            ctx.path,
                            call,
                            f"blocking call {_display(call.func)}() inside "
                            f"async def {fn.name}: {reason}; offload it "
                            "with await loop.run_in_executor(...)",
                        )

    @staticmethod
    def _reaching_ctor_types(
        fn: _FuncDef, known: Set[str]
    ) -> Dict[str, str]:
        """Like :func:`_local_ctor_types` but definition-precise: a name
        maps to a class only when *every* definition reaching the end of
        the function is a constructor call of that class."""
        cfg = flow.build_cfg(fn)
        in_states, _ = flow.solve(cfg, flow.ReachingDefinitions(cfg))
        exit_state = in_states[cfg.exit.index]
        lexical = _local_ctor_types(fn, known)
        if exit_state is None:
            return lexical
        out: Dict[str, str] = {}
        for name, cls in lexical.items():
            defs = flow.definition_nodes(exit_state, name)
            consistent = True
            for index in defs:
                node = cfg.nodes[index]
                stmt = node.stmt
                if not (
                    isinstance(stmt, ast.Assign)
                    and isinstance(stmt.value, ast.Call)
                    and isinstance(stmt.value.func, ast.Name)
                    and stmt.value.func.id == cls
                ) and node.kind != flow.WITH_ENTER:
                    consistent = False
                    break
            if consistent:
                out[name] = cls
        return out


# ---------------------------------------------------------------------------
# REP009: every lock acquire is with-scoped or released on all paths
# ---------------------------------------------------------------------------

#: Functions that legitimately return while holding: lock wrappers
#: implementing the lock protocol themselves.
_LOCK_PROTOCOL_NAMES = {
    "acquire",
    "release",
    "locked",
    "__enter__",
    "__exit__",
    "_acquire_restore",
    "_release_save",
}


class LockReleaseRule(Rule):
    """REP009: no path may leave a function with a bare acquire unreleased."""

    rule_id = "REP009"
    title = "lock acquires must be with-scoped or released on every path"
    rationale = (
        "A lock that stays held on one early-return or exception path "
        "deadlocks the next acquirer — usually in a different thread, "
        "minutes later, with no stack trace pointing here.  `with lock:` "
        "makes the release structural."
    )
    roles = (ROLE_LIBRARY,)

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        lock_names = module_lock_names(ctx.tree)
        for fn in flow.iter_function_defs(ctx.tree):
            if fn.name in _LOCK_PROTOCOL_NAMES:
                continue
            events = _LockEvents(fn, lock_names)
            if not events.bare_acquires:
                continue
            analysis = flow.HeldSetAnalysis(
                events.acquires, events.releases, mode=flow.MAY
            )
            in_states, _ = flow.solve(events.cfg, analysis)
            exit_state = in_states[events.cfg.exit.index]
            if not exit_state:
                continue
            for token, sites in sorted(events.bare_acquires.items()):
                if token in exit_state:
                    yield self.diagnostic(
                        ctx.path,
                        sites[0],
                        f"lock {token} acquired here may never be released "
                        f"on some path out of {fn.name}(); use `with "
                        f"{token}:` or release in try/finally",
                    )


# ---------------------------------------------------------------------------
# REP010: globally consistent lock-acquisition order
# ---------------------------------------------------------------------------


class LockOrderRule(Rule):
    """REP010: the project-wide lock graph must be acyclic."""

    rule_id = "REP010"
    title = "lock acquisition order must be globally consistent"
    rationale = (
        "Two code paths that take the same pair of locks in opposite "
        "orders deadlock the moment they run concurrently.  The rule "
        "builds the global acquired-while-holding graph and reports "
        "every cycle."
    )
    roles = (ROLE_LIBRARY,)

    def check_project(
        self, project: ProjectIndex, contexts: Sequence[FileContext]
    ) -> Iterator[Diagnostic]:
        # edge (held -> acquired) -> first witness (path, anchor).
        edges: Dict[Tuple[str, str], Tuple[str, ast.AST]] = {}
        for ctx in contexts:
            if ctx.role not in self.roles:
                continue
            lock_names = module_lock_names(ctx.tree)
            module = Path(ctx.path).stem
            for fn, owner in _functions_with_owner(ctx.tree):
                events = _LockEvents(fn, lock_names)
                if not events.has_lock_events:
                    continue
                analysis = flow.HeldSetAnalysis(
                    events.acquires, events.releases, mode=flow.MUST
                )
                in_states, _ = flow.solve(events.cfg, analysis)
                for index, anchors in events.acquire_anchors.items():
                    held = in_states.get(index) or frozenset()
                    for token, anchor in anchors:
                        acquired = _global_token(token, owner, module)
                        for other in held:
                            if other == token:
                                continue
                            edge = (
                                _global_token(other, owner, module),
                                acquired,
                            )
                            edges.setdefault(edge, (ctx.path, anchor))

        graph: Dict[str, Set[str]] = {}
        for held, acquired in edges:
            graph.setdefault(held, set()).add(acquired)

        seen_cycles: Set[Tuple[str, ...]] = set()
        for (held, acquired), (path, anchor) in sorted(
            edges.items(), key=lambda kv: (kv[1][0], getattr(kv[1][1], "lineno", 0))
        ):
            cycle = _find_path(graph, acquired, held)
            if cycle is None:
                continue
            loop_nodes = [held, acquired] + cycle[1:]
            canonical = _canonical_cycle(loop_nodes)
            if canonical in seen_cycles:
                continue
            seen_cycles.add(canonical)
            rendered = " -> ".join(loop_nodes + [held])
            yield self.diagnostic(
                path,
                anchor,
                f"lock-order cycle: {rendered}; acquiring {acquired} while "
                f"holding {held} here conflicts with the opposite order "
                "elsewhere in the project",
            )


def _global_token(token: str, owner: Optional[str], module: str) -> str:
    if token.startswith("self.") and owner is not None:
        return f"{owner}.{token[len('self.'):]}"
    return f"{module}.{token}"


def _find_path(
    graph: Dict[str, Set[str]], start: str, goal: str
) -> Optional[List[str]]:
    """A simple DFS path start -> goal in the lock graph, or None."""
    stack: List[Tuple[str, List[str]]] = [(start, [start])]
    visited: Set[str] = set()
    while stack:
        node, path = stack.pop()
        if node == goal:
            return path
        if node in visited:
            continue
        visited.add(node)
        for succ in sorted(graph.get(node, ())):
            stack.append((succ, path + [succ]))
    return None


def _canonical_cycle(nodes: List[str]) -> Tuple[str, ...]:
    return tuple(sorted(set(nodes)))


# ---------------------------------------------------------------------------
# REP011: shared-memory slot lifecycle (acquire -> write -> ack)
# ---------------------------------------------------------------------------


def _is_slot_acquire(call: ast.Call) -> bool:
    if isinstance(call.func, ast.Attribute):
        if call.func.attr == "pop":
            parts = _dotted(call.func.value)
            if parts is not None and any("free" in p.lower() for p in parts):
                return True
    parts = _dotted(call.func)
    if parts is not None:
        last = parts[-1].lower()
        if "take_free_slot" in last or "acquire_slot" in last or "take_slot" in last:
            return True
    return False


def _flat_args(call: ast.Call) -> Iterator[ast.expr]:
    todo: List[ast.expr] = list(call.args) + [kw.value for kw in call.keywords]
    while todo:
        arg = todo.pop()
        if isinstance(arg, (ast.Tuple, ast.List)):
            todo.extend(arg.elts)
        else:
            yield arg


def _released_tokens(stmt: ast.stmt, tokens: Set[str]) -> Set[str]:
    """Tokens this statement hands back (queued, acked, or re-freed)."""
    released: Set[str] = set()
    for call, _awaited in _iter_stmt_calls(stmt):
        release_call = False
        if isinstance(call.func, ast.Attribute):
            attr = call.func.attr
            if attr in ("put", "put_nowait", "send"):
                release_call = True
            elif attr == "append":
                parts = _dotted(call.func.value)
                release_call = parts is not None and any(
                    "free" in p.lower() for p in parts
                )
        parts = _dotted(call.func)
        if parts is not None and "release" in parts[-1].lower():
            release_call = True
        if not release_call:
            continue
        for arg in _flat_args(call):
            if isinstance(arg, ast.Name) and arg.id in tokens:
                released.add(arg.id)
    return released


class SlotLifecycleRule(Rule):
    """REP011: a popped shared-memory slot is released exactly once per path."""

    rule_id = "REP011"
    title = "shared-memory slots must not leak or double-release"
    rationale = (
        "The parallel and durability engines hand ChunkSlots to workers "
        "over queues and get them back as acks.  A slot that leaks on an "
        "error path permanently shrinks the double-buffer ring; a slot "
        "queued twice lets a worker overwrite data another worker is "
        "still reading."
    )
    roles = (ROLE_LIBRARY,)

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for fn in flow.iter_function_defs(ctx.tree):
            cfg = flow.build_cfg(fn)

            # Collect the slot tokens this function acquires.
            acquire_sites: Dict[str, List[ast.stmt]] = {}
            node_acquires: Dict[int, FrozenSet[str]] = {}
            for node in cfg.iter_nodes(flow.STMT):
                stmt = node.stmt
                if (
                    isinstance(stmt, ast.Assign)
                    and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)
                    and isinstance(stmt.value, ast.Call)
                    and _is_slot_acquire(stmt.value)
                ):
                    token = stmt.targets[0].id
                    acquire_sites.setdefault(token, []).append(stmt)
                    node_acquires[node.index] = frozenset({token})
            if not acquire_sites:
                continue
            tokens = set(acquire_sites)

            node_releases: Dict[int, FrozenSet[str]] = {}
            release_anchor: Dict[int, ast.stmt] = {}
            for node in cfg.iter_nodes(flow.STMT):
                stmt = node.stmt
                if stmt is None:
                    continue
                released = _released_tokens(stmt, tokens)
                if released:
                    node_releases[node.index] = frozenset(released)
                    release_anchor[node.index] = stmt

            def acquires(node: flow.CFNode) -> FrozenSet[str]:
                return node_acquires.get(node.index, frozenset())

            def releases(node: flow.CFNode) -> FrozenSet[str]:
                return node_releases.get(node.index, frozenset())

            may = flow.HeldSetAnalysis(acquires, releases, mode=flow.MAY)
            may_in, _ = flow.solve(cfg, may)
            must = flow.HeldSetAnalysis(acquires, releases, mode=flow.MUST)
            must_in, _ = flow.solve(cfg, must)

            # Double release: a release the slot may not be held for.
            for index, released in sorted(node_releases.items()):
                held = must_in.get(index)
                if held is None:
                    continue  # unreachable
                for token in sorted(released):
                    if token not in held and token in (
                        may_in.get(index) or frozenset()
                    ):
                        yield self.diagnostic(
                            ctx.path,
                            release_anchor[index],
                            f"slot {token} may already have been released "
                            f"when it is handed back here in {fn.name}(); "
                            "double-release lets two workers share a buffer",
                        )

            # Leak: held on some path at function exit.
            exit_state = may_in[cfg.exit.index]
            if exit_state:
                for token in sorted(tokens & exit_state):
                    yield self.diagnostic(
                        ctx.path,
                        acquire_sites[token][0],
                        f"slot {token} acquired here may leak on some path "
                        f"out of {fn.name}() (never queued, acked, or "
                        "returned to the free list)",
                    )


# ---------------------------------------------------------------------------
# REP012: no silently swallowed broad exceptions
# ---------------------------------------------------------------------------

_BROAD_EXCEPTION_NAMES = {"Exception", "BaseException"}
_EVIDENCE_CALLS = {
    "record_event",
    "format_exc",
    "print_exc",
    "print_exception",
    "exception",
}


def _is_broad_handler(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    types: List[ast.expr] = (
        list(handler.type.elts)
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    for node in types:
        parts = _dotted(node)
        if parts is not None and parts[-1] in _BROAD_EXCEPTION_NAMES:
            return True
    return False


def _handler_has_evidence(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call):
            parts = _dotted(node.func)
            if parts is not None and parts[-1] in _EVIDENCE_CALLS:
                return True
    return False


class SilentExceptionRule(Rule):
    """REP012: broad handlers must surface the error somewhere."""

    rule_id = "REP012"
    title = "broad except handlers must record_event() or re-raise"
    rationale = (
        "A worker loop that catches Exception and moves on turns every "
        "future bug into silent data loss — the supervisor keeps "
        "resending, the daemon keeps answering, and nothing in the "
        "flight recorder says why the numbers are wrong."
    )
    roles = (ROLE_LIBRARY,)

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _is_broad_handler(node):
                continue
            if _handler_has_evidence(node):
                continue
            what = "bare except" if node.type is None else (
                f"except {_display(node.type)}"
                if not isinstance(node.type, ast.Tuple)
                else "broad except"
            )
            yield self.diagnostic(
                ctx.path,
                node,
                f"{what} swallows errors silently; narrow the exception "
                "type, re-raise, or record_event() it for the flight "
                "recorder",
            )


#: The concurrency pack, in catalog order (appended to DEFAULT_RULES).
CONCURRENCY_RULES: Tuple[Rule, ...] = (
    BlockingInAsyncRule(),
    LockReleaseRule(),
    LockOrderRule(),
    SlotLifecycleRule(),
    SilentExceptionRule(),
)
