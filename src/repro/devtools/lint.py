"""replint command-line interface.

Usage::

    python -m repro.devtools.lint src tests benchmarks
    python -m repro.devtools.lint --format json src
    python -m repro.devtools.lint --select REP001,REP004 src/repro
    python -m repro.devtools.lint --list-rules

Exit status is 0 when no diagnostics are emitted, 1 when at least one
rule fired, and 2 on usage errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence, Set

from repro.devtools.engine import Linter, render_json, render_text
from repro.devtools.rules import DEFAULT_RULES, RULES_BY_ID

#: Directories linted when no paths are given (those that exist).
_DEFAULT_PATHS = ("src", "tests", "benchmarks", "examples")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.lint",
        description="replint: domain-aware static analysis for repro",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src tests "
        "benchmarks examples, those that exist)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="diagnostic output format (default: text)",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def list_rules() -> str:
    lines: List[str] = []
    for rule in DEFAULT_RULES:
        lines.append(f"{rule.rule_id}  {rule.title}")
        lines.append(f"    applies to: {', '.join(rule.roles)}")
        lines.append(f"    {rule.rationale}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        print(list_rules())
        return 0
    select: Optional[Set[str]] = None
    if args.select:
        select = {part.strip() for part in args.select.split(",") if part.strip()}
        unknown = select - set(RULES_BY_ID)
        if unknown:
            parser.error(
                f"unknown rule id(s): {', '.join(sorted(unknown))}; "
                f"known: {', '.join(sorted(RULES_BY_ID))}"
            )
    paths: List[str] = list(args.paths)
    if not paths:
        paths = [p for p in _DEFAULT_PATHS if Path(p).exists()]
        if not paths:
            paths = ["."]
    linter = Linter(DEFAULT_RULES, select=select)
    result = linter.run(paths)
    if args.format == "json":
        print(render_json(result))
    else:
        print(render_text(result))
    return result.exit_code


if __name__ == "__main__":
    sys.exit(main())
