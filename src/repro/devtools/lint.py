"""replint command-line interface.

Usage::

    python -m repro.devtools.lint src tests benchmarks
    python -m repro.devtools.lint --format json src
    python -m repro.devtools.lint --select REP001,REP004 src/repro
    python -m repro.devtools.lint --list-rules

Exit status is 0 when no diagnostics are emitted, 1 when at least one
rule fired, and 2 on usage errors.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path
from typing import List, Optional, Sequence, Set

from repro.devtools.engine import Linter, render_json, render_text
from repro.devtools.rules import DEFAULT_RULES, RULES_BY_ID

#: Directories linted when no paths are given (those that exist).
_DEFAULT_PATHS = ("src", "tests", "benchmarks", "examples")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.lint",
        description="replint: domain-aware static analysis for repro",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src tests "
        "benchmarks examples, those that exist)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="diagnostic output format (default: text)",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids and/or inclusive ranges to run, "
        "e.g. REP001,REP008-REP012 (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


_RANGE_RE = re.compile(r"^(REP)(\d+)-(REP)(\d+)$")


def parse_select(spec: str) -> Set[str]:
    """Expand a ``--select`` spec: ids and ``REPxxx-REPyyy`` ranges.

    Raises ValueError on malformed ranges; unknown-id validation is the
    caller's job (ranges expand only to ids that exist in the catalog,
    so ``REP001-REP099`` simply selects everything).
    """
    selected: Set[str] = set()
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        match = _RANGE_RE.match(part)
        if match is None:
            selected.add(part)
            continue
        low, high = int(match.group(2)), int(match.group(4))
        if low > high:
            raise ValueError(f"backwards rule range: {part}")
        expanded = {
            rule_id
            for rule_id in RULES_BY_ID
            if rule_id.startswith("REP")
            and low <= int(rule_id[3:]) <= high
        }
        if not expanded:
            raise ValueError(f"rule range matches nothing: {part}")
        selected |= expanded
    return selected


def list_rules() -> str:
    lines: List[str] = []
    for rule in DEFAULT_RULES:
        lines.append(f"{rule.rule_id}  {rule.title}")
        lines.append(f"    applies to: {', '.join(rule.roles)}")
        lines.append(f"    {rule.rationale}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        print(list_rules())
        return 0
    select: Optional[Set[str]] = None
    if args.select:
        try:
            select = parse_select(args.select)
        except ValueError as exc:
            parser.error(str(exc))
        unknown = select - set(RULES_BY_ID)
        if unknown:
            parser.error(
                f"unknown rule id(s): {', '.join(sorted(unknown))}; "
                f"known: {', '.join(sorted(RULES_BY_ID))}"
            )
    paths: List[str] = list(args.paths)
    if not paths:
        paths = [p for p in _DEFAULT_PATHS if Path(p).exists()]
        if not paths:
            paths = ["."]
    linter = Linter(DEFAULT_RULES, select=select)
    result = linter.run(paths)
    if args.format == "json":
        print(render_json(result))
    else:
        print(render_text(result))
    return result.exit_code


if __name__ == "__main__":
    sys.exit(main())
