"""Marker decorators recognized by the replint rules.

This module is imported by library code (unlike the rest of
``repro.devtools``), so it must stay free of any dependency — it defines
plain pass-through decorators whose only job is to be *visible in the
AST* to the lint rules.
"""

from __future__ import annotations

from typing import Callable, TypeVar

_F = TypeVar("_F", bound=Callable[..., object])


def debug_asserts(func: _F) -> _F:
    """REP004 allowlist: permit bare ``assert`` inside ``func``.

    Library code must raise typed errors from :mod:`repro.core.errors`
    instead of asserting, because ``python -O`` strips asserts.  A
    handful of *debug-only* helpers (invariant checkers that exist for
    the test suite, never for production control flow) are exempt; this
    decorator marks them explicitly so the exemption is visible at the
    definition site and auditable by ``replint``.

    The decorator changes nothing at runtime — it returns ``func``
    untouched.
    """
    return func
