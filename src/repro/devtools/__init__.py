"""Developer tooling for the repro library.

``repro.devtools`` is the home of *replint*, a domain-aware static
analysis pass that enforces the invariants the rest of the library only
states in prose: seeded-RNG determinism, the registry/snapshot/metrics
contracts, and the no-bare-assert rule that keeps invariant checking
alive under ``python -O``.

Run it as a module::

    python -m repro.devtools.lint src tests benchmarks

See ``docs/static-analysis.md`` for the rule catalog and suppression
syntax (``# replint: disable=REP001``).

This package deliberately has no third-party dependencies (not even
numpy) so it can run in the leanest CI environment, and nothing in the
library proper imports it except :mod:`repro.devtools.marks`, whose
decorators are dependency-free markers.
"""

from repro.devtools.engine import (
    Diagnostic,
    FileContext,
    LintResult,
    Linter,
    ProjectIndex,
    Rule,
)
from repro.devtools.marks import debug_asserts
from repro.devtools.rules import DEFAULT_RULES

__all__ = [
    "DEFAULT_RULES",
    "Diagnostic",
    "FileContext",
    "LintResult",
    "Linter",
    "ProjectIndex",
    "Rule",
    "debug_asserts",
]
