"""The replint rule engine: file discovery, AST indexing, suppression
handling, and diagnostic reporting.

Design
------

Linting runs in two passes:

1. **Index pass** — every file is parsed once and summarized into a
   :class:`ProjectIndex`: class definitions (name, bases, decorators,
   methods with their signatures), ``DEFAULT_INSTRUMENTS`` metric-name
   declarations, and ``__getstate__``/``__setstate__`` field literals.
   Cross-file rules (sketch contracts, snapshot coverage, metric
   preregistration) resolve names against this index, so the engine
   never imports the code it lints.
2. **Rule pass** — each :class:`Rule` visits each file's AST with the
   index available through :class:`FileContext`, yielding
   :class:`Diagnostic` records.  Project-scope rules may additionally
   emit diagnostics once per run via :meth:`Rule.check_project`.

Suppressions: a trailing ``# replint: disable=REP001`` comment silences
the named rules (comma-separated, or ``all``) on that line; a comment
line ``# replint: disable-file=REP001`` anywhere in the file silences
them for the whole file.  Directories named ``replint_fixtures`` are
never linted — that is where the test suite keeps deliberately bad
sources.
"""

from __future__ import annotations

import ast
import dataclasses
import io
import json
import re
import tokenize
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

#: Directory names the file walker never descends into.
SKIP_DIR_NAMES = {
    "__pycache__",
    ".git",
    ".mypy_cache",
    ".pytest_cache",
    "replint_fixtures",
}

_SUPPRESS_RE = re.compile(
    r"#\s*replint:\s*(disable(?:-file)?)\s*=\s*([A-Za-z0-9_,\s]+)"
)

#: Roles a file can play; rules scope themselves to a subset.
ROLE_LIBRARY = "library"
ROLE_TESTS = "tests"
ROLE_BENCHMARKS = "benchmarks"
ROLE_EXAMPLES = "examples"
ROLE_OTHER = "other"


@dataclasses.dataclass(frozen=True)
class Diagnostic:
    """One finding: rule, location, human message."""

    rule_id: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"

    def to_json(self) -> Dict[str, object]:
        return dataclasses.asdict(self)


@dataclasses.dataclass
class MethodInfo:
    """Signature summary of one function/method definition."""

    name: str
    line: int
    #: positional parameter names, including ``self``.
    pos_params: Tuple[str, ...]
    #: number of positional parameters carrying defaults.
    pos_defaults: int
    has_vararg: bool
    has_kwarg: bool
    #: keyword-only parameter names without defaults.
    required_kwonly: Tuple[str, ...]
    decorators: Tuple[str, ...]


@dataclasses.dataclass
class ClassInfo:
    """Summary of one class definition, as seen by the index pass."""

    name: str
    path: str
    line: int
    role: str
    #: base-class names as written (dotted names collapsed to the last
    #: attribute, e.g. ``base.QuantileSketch`` -> ``QuantileSketch``).
    bases: Tuple[str, ...]
    #: decorator call names, e.g. ``register`` / ``snapshottable``.
    decorator_names: Tuple[str, ...]
    #: first-argument string literal per decorator call, when present.
    decorator_keys: Dict[str, str]
    methods: Dict[str, MethodInfo]
    #: constant keys written by ``__getstate__`` (dict literal returns).
    getstate_keys: Optional[Set[str]] = None
    #: constant keys read by ``__setstate__`` (subscripts / .get calls).
    setstate_keys: Optional[Set[str]] = None


def _call_name(node: ast.expr) -> Optional[str]:
    """Last-attribute name of a decorator/call target, or None."""
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _summarize_function(node: ast.FunctionDef) -> MethodInfo:
    args = node.args
    pos = tuple(a.arg for a in args.posonlyargs + args.args)
    required_kwonly = tuple(
        a.arg
        for a, default in zip(args.kwonlyargs, args.kw_defaults)
        if default is None
    )
    decorators = tuple(
        name
        for name in (_call_name(d) for d in node.decorator_list)
        if name is not None
    )
    return MethodInfo(
        name=node.name,
        line=node.lineno,
        pos_params=pos,
        pos_defaults=len(args.defaults),
        has_vararg=args.vararg is not None,
        has_kwarg=args.kwarg is not None,
        required_kwonly=required_kwonly,
        decorators=decorators,
    )


def _const_str(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _extract_getstate_keys(node: ast.FunctionDef) -> Optional[Set[str]]:
    """Constant keys of dict literals returned by ``__getstate__``.

    Returns None when the method's returns are not statically
    extractable (non-literal return), meaning "don't check".
    """
    keys: Set[str] = set()
    extractable = False
    for stmt in ast.walk(node):
        if not isinstance(stmt, ast.Return) or stmt.value is None:
            continue
        if isinstance(stmt.value, ast.Dict):
            extractable = True
            for key in stmt.value.keys:
                text = _const_str(key) if key is not None else None
                if text is not None:
                    keys.add(text)
        else:
            return None
    return keys if extractable else None


def _extract_setstate_keys(node: ast.FunctionDef) -> Optional[Set[str]]:
    """Constant keys ``__setstate__`` reads from its state argument."""
    args = node.args.posonlyargs + node.args.args
    if len(args) < 2:
        return None
    state_name = args[1].arg
    keys: Set[str] = set()
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Subscript)
            and isinstance(sub.value, ast.Name)
            and sub.value.id == state_name
        ):
            text = _const_str(sub.slice)
            if text is not None:
                keys.add(text)
        elif (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Attribute)
            and sub.func.attr in ("get", "pop")
            and isinstance(sub.func.value, ast.Name)
            and sub.func.value.id == state_name
            and sub.args
        ):
            text = _const_str(sub.args[0])
            if text is not None:
                keys.add(text)
    return keys or None


def infer_role(path: Path) -> str:
    """Classify a file by the directories on its path."""
    parts = set(path.parts)
    if "tests" in parts or "test" in parts:
        return ROLE_TESTS
    if "benchmarks" in parts:
        return ROLE_BENCHMARKS
    if "examples" in parts:
        return ROLE_EXAMPLES
    if "repro" in parts or "src" in parts:
        return ROLE_LIBRARY
    return ROLE_OTHER


class ProjectIndex:
    """Cross-file facts collected in the index pass."""

    def __init__(self) -> None:
        #: class name -> ClassInfo (last definition wins; the library
        #: has no duplicate class names across modules).
        self.classes: Dict[str, ClassInfo] = {}
        #: metric names declared in any ``DEFAULT_INSTRUMENTS`` literal.
        self.declared_metrics: Set[str] = set()
        #: True once at least one DEFAULT_INSTRUMENTS literal was seen.
        self.has_metric_declarations = False

    # -- construction ---------------------------------------------------

    def add_file(self, path: Path, tree: ast.Module, role: str) -> None:
        for node in tree.body:
            if isinstance(node, ast.ClassDef):
                self._add_class(path, node, role)
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                self._maybe_add_instruments(node)

    def _add_class(self, path: Path, node: ast.ClassDef, role: str) -> None:
        methods: Dict[str, MethodInfo] = {}
        getstate_keys: Optional[Set[str]] = None
        setstate_keys: Optional[Set[str]] = None
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if isinstance(stmt, ast.AsyncFunctionDef):
                    continue
                methods[stmt.name] = _summarize_function(stmt)
                if stmt.name == "__getstate__":
                    getstate_keys = _extract_getstate_keys(stmt)
                elif stmt.name == "__setstate__":
                    setstate_keys = _extract_setstate_keys(stmt)
        decorator_names = []
        decorator_keys: Dict[str, str] = {}
        for dec in node.decorator_list:
            name = _call_name(dec)
            if name is None:
                continue
            decorator_names.append(name)
            if isinstance(dec, ast.Call) and dec.args:
                key = _const_str(dec.args[0])
                if key is not None:
                    decorator_keys[name] = key
        bases = tuple(
            name
            for name in (_call_name(b) for b in node.bases)
            if name is not None
        )
        self.classes[node.name] = ClassInfo(
            name=node.name,
            path=str(path),
            line=node.lineno,
            role=role,
            bases=bases,
            decorator_names=tuple(decorator_names),
            decorator_keys=decorator_keys,
            methods=methods,
            getstate_keys=getstate_keys,
            setstate_keys=setstate_keys,
        )

    def _maybe_add_instruments(self, node: ast.stmt) -> None:
        targets: List[ast.expr]
        value: Optional[ast.expr]
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
            value = node.value
        elif isinstance(node, ast.AnnAssign):
            targets = [node.target]
            value = node.value
        else:
            return
        named = any(
            isinstance(t, ast.Name) and t.id == "DEFAULT_INSTRUMENTS"
            for t in targets
        )
        if not named or not isinstance(value, (ast.Tuple, ast.List)):
            return
        for element in value.elts:
            if (
                isinstance(element, (ast.Tuple, ast.List))
                and len(element.elts) == 2
            ):
                metric = _const_str(element.elts[1])
                if metric is not None:
                    self.declared_metrics.add(metric)
                    self.has_metric_declarations = True

    # -- queries --------------------------------------------------------

    def iter_subclass_chain(self, name: str) -> Iterator[ClassInfo]:
        """The class and every indexed ancestor, breadth-first."""
        seen: Set[str] = set()
        queue = [name]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            info = self.classes.get(current)
            if info is None:
                continue
            yield info
            queue.extend(info.bases)

    def is_subclass_of(self, name: str, target: str) -> Optional[bool]:
        """Whether ``name`` transitively subclasses ``target`` (by name).

        Returns None when the chain leaves the index (an unresolvable
        base), meaning "cannot prove either way".
        """
        unresolved = False
        for info in self.iter_subclass_chain(name):
            if info.name == target or target in info.bases:
                return True
            for base in info.bases:
                if base == target:
                    return True
                if base not in self.classes and base != "object":
                    unresolved = True
        return None if unresolved else False

    def find_method(self, name: str, method: str) -> Optional[MethodInfo]:
        """Resolve ``method`` on ``name`` or any indexed ancestor."""
        for info in self.iter_subclass_chain(name):
            if method in info.methods:
                return info.methods[method]
        return None


@dataclasses.dataclass
class FileContext:
    """Everything a rule needs to know about the file being checked."""

    path: str
    role: str
    tree: ast.Module
    source: str
    project: ProjectIndex
    #: line number -> rule ids suppressed on that line ("all" wildcard).
    line_suppressions: Dict[int, Set[str]]
    #: rule ids suppressed for the whole file.
    file_suppressions: Set[str]

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        if rule_id in self.file_suppressions or "all" in self.file_suppressions:
            return True
        rules = self.line_suppressions.get(line)
        return rules is not None and (rule_id in rules or "all" in rules)


def parse_suppressions(
    source: str,
) -> Tuple[Dict[int, Set[str]], Set[str]]:
    """Extract line- and file-level ``# replint:`` suppression comments."""
    line_rules: Dict[int, Set[str]] = {}
    file_rules: Set[str] = set()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [
            (tok.start[0], tok.string)
            for tok in tokens
            if tok.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        comments = [
            (i + 1, line[line.index("#"):])
            for i, line in enumerate(source.splitlines())
            if "#" in line
        ]
    for line, comment in comments:
        match = _SUPPRESS_RE.search(comment)
        if not match:
            continue
        kind, spec = match.groups()
        rules = {part.strip() for part in spec.split(",") if part.strip()}
        if kind == "disable-file":
            file_rules |= rules
        else:
            line_rules.setdefault(line, set()).update(rules)
    return line_rules, file_rules


class Rule:
    """Base class for replint rules.

    Subclasses set :attr:`rule_id` / :attr:`title` / :attr:`rationale`,
    declare the file roles they apply to via :attr:`roles`, and
    implement :meth:`check` (per file) and/or :meth:`check_project`
    (once per run, after every file has been indexed and checked).
    """

    rule_id = "REP000"
    title = "abstract rule"
    rationale = ""
    roles: Tuple[str, ...] = (ROLE_LIBRARY,)

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.role in self.roles

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        return iter(())

    def check_project(
        self, project: ProjectIndex, contexts: Sequence[FileContext]
    ) -> Iterator[Diagnostic]:
        return iter(())

    def diagnostic(
        self, ctx_path: str, node: object, message: str
    ) -> Diagnostic:
        # `node` is anything carrying lineno/col_offset — an ast.AST or a
        # plain location anchor for project-scope diagnostics.
        return Diagnostic(
            rule_id=self.rule_id,
            path=ctx_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


#: Version tag of the JSON output schema (see docs/static-analysis.md).
#: Bump only when a documented key changes meaning or disappears.
JSON_SCHEMA = "replint-json/1"


@dataclasses.dataclass
class LintResult:
    """Outcome of one lint run."""

    diagnostics: List[Diagnostic]
    files_checked: int
    suppressed: int
    #: the findings silenced by `# replint: disable` comments, kept so
    #: the JSON output can show what the suppressions are hiding.
    suppressed_diagnostics: List[Diagnostic] = dataclasses.field(
        default_factory=list
    )

    @property
    def exit_code(self) -> int:
        return 1 if self.diagnostics else 0

    def to_json(self) -> Dict[str, object]:
        """The stable JSON payload.

        Schema (``replint-json/1``): top-level ``schema``,
        ``files_checked``, ``suppressed`` (count), and ``diagnostics`` —
        one record per finding *including suppressed ones*, each with
        ``rule``, ``path``, ``line``, ``col``, ``message``, and
        ``suppressed`` (bool).  ``rule_id`` is kept as an alias of
        ``rule``.  The exit code counts only unsuppressed findings.
        """
        merged: List[Tuple[Diagnostic, bool]] = [
            (d, False) for d in self.diagnostics
        ] + [(d, True) for d in self.suppressed_diagnostics]
        merged.sort(key=lambda pair: (pair[0].path, pair[0].line, pair[0].col, pair[0].rule_id))
        records: List[Dict[str, object]] = []
        for diag, was_suppressed in merged:
            record = diag.to_json()
            record["rule"] = diag.rule_id
            record["suppressed"] = was_suppressed
            records.append(record)
        return {
            "schema": JSON_SCHEMA,
            "files_checked": self.files_checked,
            "suppressed": self.suppressed,
            "diagnostics": records,
        }


def discover_files(paths: Iterable[str]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_file() and path.suffix == ".py":
            out.append(path)
        elif path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                if not any(part in SKIP_DIR_NAMES for part in sub.parts):
                    out.append(sub)
    unique: List[Path] = []
    seen: Set[Path] = set()
    for path in out:
        if path not in seen:
            seen.add(path)
            unique.append(path)
    return unique


class Linter:
    """Drives the two-pass lint over a set of paths."""

    def __init__(
        self,
        rules: Sequence[Rule],
        select: Optional[Set[str]] = None,
    ) -> None:
        if select:
            rules = [r for r in rules if r.rule_id in select]
        self.rules: List[Rule] = list(rules)

    def build_contexts(
        self, files: Sequence[Path]
    ) -> Tuple[ProjectIndex, List[FileContext], List[Diagnostic]]:
        project = ProjectIndex()
        contexts: List[FileContext] = []
        errors: List[Diagnostic] = []
        for path in files:
            try:
                source = path.read_text(encoding="utf-8")
                tree = ast.parse(source, filename=str(path))
            except (SyntaxError, UnicodeDecodeError, OSError) as exc:
                errors.append(
                    Diagnostic(
                        rule_id="REP000",
                        path=str(path),
                        line=getattr(exc, "lineno", 1) or 1,
                        col=0,
                        message=f"file could not be parsed: {exc}",
                    )
                )
                continue
            role = infer_role(path)
            project.add_file(path, tree, role)
            line_sup, file_sup = parse_suppressions(source)
            contexts.append(
                FileContext(
                    path=str(path),
                    role=role,
                    tree=tree,
                    source=source,
                    project=project,
                    line_suppressions=line_sup,
                    file_suppressions=file_sup,
                )
            )
        return project, contexts, errors

    def run(self, paths: Iterable[str]) -> LintResult:
        files = discover_files(paths)
        project, contexts, diagnostics = self.build_contexts(files)
        suppressed: List[Diagnostic] = []
        for ctx in contexts:
            for rule in self.rules:
                if not rule.applies_to(ctx):
                    continue
                for diag in rule.check(ctx):
                    if ctx.is_suppressed(diag.rule_id, diag.line):
                        suppressed.append(diag)
                    else:
                        diagnostics.append(diag)
        ctx_by_path = {ctx.path: ctx for ctx in contexts}
        for rule in self.rules:
            for diag in rule.check_project(project, contexts):
                ctx = ctx_by_path.get(diag.path)
                if ctx is not None and ctx.is_suppressed(diag.rule_id, diag.line):
                    suppressed.append(diag)
                else:
                    diagnostics.append(diag)
        diagnostics.sort(key=lambda d: (d.path, d.line, d.col, d.rule_id))
        return LintResult(
            diagnostics=diagnostics,
            files_checked=len(contexts),
            suppressed=len(suppressed),
            suppressed_diagnostics=suppressed,
        )


def render_text(result: LintResult) -> str:
    lines = [diag.format() for diag in result.diagnostics]
    summary = (
        f"replint: {len(result.diagnostics)} problem(s) in "
        f"{result.files_checked} file(s)"
    )
    if result.suppressed:
        summary += f" ({result.suppressed} suppressed)"
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    return json.dumps(result.to_json(), indent=2, sort_keys=True)
