"""Runtime lock-order sanitizer and pytest plugin.

The static pack (REP009/REP010) reasons about locks it can *see*; this
module watches the locks the process actually takes.  Installing the
sanitizer replaces ``threading.Lock``/``threading.RLock`` with
instrumented wrappers that:

* maintain a per-thread stack of held locks,
* add an edge ``A -> B`` to a process-global lock-order graph every
  time ``B`` is acquired while ``A`` is held, and report a violation
  the moment an edge closes a cycle (the deadlock-prone pattern: two
  threads taking the same pair of locks in opposite orders),
* flag acquires that *wait* longer than a threshold, and releases after
  *holding* longer than the threshold, on a thread that is running an
  asyncio event loop — the serve tier's p99 dies quietly when a lock
  parks the loop.

Because patching replaces the ``threading`` constructors, everything
built on them during the test run — ``queue.Queue`` internals, library
locks such as ``MetricsRegistry._lock``, test-local locks — feeds the
graph for free.  ``Condition`` objects wrap whatever lock they are
given; their internal waiter locks come from ``_thread.allocate_lock``
and stay raw, so a ``wait()`` never fabricates false edges.

Use as a pytest plugin::

    pytest -p repro.devtools.sanitize tests/serve tests/parallel

The plugin installs the wrappers for the whole session, prints a
violation report at the end, and fails the run (exit status 1) if the
lock-order graph ever grew a cycle or an event loop was blocked past
the threshold (``--lock-sanitizer-threshold``, seconds).

The wrappers are also usable directly (no global patching) for targeted
tests: build a :class:`SanitizerState` and construct
:class:`InstrumentedLock` objects against it.
"""

from __future__ import annotations

import asyncio
import sys
import threading
import time
from typing import Any, Dict, List, Optional, Set, Tuple

# Captured before any patching so the sanitizer's own bookkeeping never
# recurses into the wrappers.
_REAL_LOCK = threading.Lock
_REAL_RLOCK = threading.RLock

#: Seconds a lock may wait/hold on an event-loop thread before the
#: sanitizer calls it a violation.
DEFAULT_BLOCK_THRESHOLD_S = 0.25

_CYCLE = "lock-order-cycle"
_LOOP_WAIT = "event-loop-blocked-wait"
_LOOP_HOLD = "event-loop-blocked-hold"


class Violation:
    """One sanitizer finding."""

    __slots__ = ("kind", "message")

    def __init__(self, kind: str, message: str) -> None:
        self.kind = kind
        self.message = message

    def __repr__(self) -> str:
        return f"Violation({self.kind}: {self.message})"


def _caller_site() -> str:
    """file:line of the nearest frame outside this module."""
    frame = sys._getframe(1)
    while frame is not None:
        filename = frame.f_code.co_filename
        if not filename.endswith("sanitize.py") and "threading" not in filename:
            return f"{filename}:{frame.f_lineno}"
        back = frame.f_back
        if back is None:
            break
        frame = back
    return "<unknown>"


def _loop_running_here() -> bool:
    """Whether an asyncio event loop is running on *this* thread."""
    try:
        asyncio.get_running_loop()
    except RuntimeError:
        return False
    return True


class SanitizerState:
    """Process-global lock graph, per-thread held stacks, violations."""

    def __init__(
        self, block_threshold_s: float = DEFAULT_BLOCK_THRESHOLD_S
    ) -> None:
        self.block_threshold_s = block_threshold_s
        self._mu = _REAL_LOCK()
        self._serial = 0
        #: lock serial -> display name (creation site).
        self.names: Dict[int, str] = {}
        #: adjacency: held serial -> serials acquired while holding it.
        self.graph: Dict[int, Set[int]] = {}
        #: edge -> first witness site, for reporting.
        self.edge_sites: Dict[Tuple[int, int], str] = {}
        self.violations: List[Violation] = []
        self._seen_cycles: Set[Tuple[int, ...]] = set()
        self._seen_loop_sites: Set[Tuple[str, str]] = set()
        self._tls = threading.local()

    # -- registration ---------------------------------------------------

    def register(self, name: str) -> int:
        with self._mu:
            self._serial += 1
            self.names[self._serial] = name
            return self._serial

    # -- per-thread held stack -----------------------------------------

    def _stack(self) -> List[Tuple[int, float]]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = []
            self._tls.stack = stack
        return stack

    def held_serials(self) -> List[int]:
        return [serial for serial, _t0 in self._stack()]

    # -- events ---------------------------------------------------------

    def on_acquired(
        self, serial: int, t0: float, waited_s: float, reentrant: bool
    ) -> None:
        stack = self._stack()
        if not reentrant:
            held = [s for s, _t in stack if s != serial]
            if held:
                site = _caller_site()
                with self._mu:
                    for h in held:
                        self._add_edge(h, serial, site)
        stack.append((serial, t0))
        if waited_s > self.block_threshold_s and _loop_running_here():
            self._loop_violation(
                _LOOP_WAIT,
                f"waited {waited_s:.3f}s for {self._name(serial)} on an "
                f"event-loop thread at {_caller_site()}",
                serial,
            )

    def on_released(self, serial: int, now: float) -> None:
        stack = self._stack()
        for index in range(len(stack) - 1, -1, -1):
            if stack[index][0] == serial:
                _s, t0 = stack.pop(index)
                held_s = now - t0
                if held_s > self.block_threshold_s and _loop_running_here():
                    self._loop_violation(
                        _LOOP_HOLD,
                        f"held {self._name(serial)} for {held_s:.3f}s on an "
                        f"event-loop thread (released at {_caller_site()})",
                        serial,
                    )
                return

    # -- graph ----------------------------------------------------------

    def _name(self, serial: int) -> str:
        with self._mu:
            return self.names.get(serial, f"Lock#{serial}")

    def _add_edge(self, held: int, acquired: int, site: str) -> None:
        # _mu is held by the caller.
        edge = (held, acquired)
        if edge in self.edge_sites:
            return
        self.edge_sites[edge] = site
        self.graph.setdefault(held, set()).add(acquired)
        cycle = self._find_path(acquired, held)
        if cycle is None:
            return
        nodes = [held] + cycle
        canonical = tuple(sorted(set(nodes)))
        if canonical in self._seen_cycles:
            return
        self._seen_cycles.add(canonical)
        chain = " -> ".join(self.names.get(s, f"Lock#{s}") for s in nodes + [held])
        sites = "; ".join(
            f"{self.names.get(a, a)} then {self.names.get(b, b)} at "
            f"{self.edge_sites.get((a, b), '?')}"
            for a, b in zip(nodes, nodes[1:] + [held])
            if (a, b) in self.edge_sites
        )
        self.violations.append(
            Violation(
                _CYCLE,
                f"lock-order cycle {chain} (edges: {sites})",
            )
        )

    def _find_path(self, start: int, goal: int) -> Optional[List[int]]:
        # _mu is held by the caller.
        stack: List[Tuple[int, List[int]]] = [(start, [start])]
        visited: Set[int] = set()
        while stack:
            node, path = stack.pop()
            if node == goal:
                return path
            if node in visited:
                continue
            visited.add(node)
            for succ in self.graph.get(node, ()):
                stack.append((succ, path + [succ]))
        return None

    def _loop_violation(self, kind: str, message: str, serial: int) -> None:
        with self._mu:
            key = (kind, self.names.get(serial, str(serial)))
            if key in self._seen_loop_sites:
                return
            self._seen_loop_sites.add(key)
            self.violations.append(Violation(kind, message))

    def report(self) -> str:
        with self._mu:
            if not self.violations:
                return "lock sanitizer: no violations"
            lines = [
                f"lock sanitizer: {len(self.violations)} violation(s):"
            ]
            for violation in self.violations:
                lines.append(f"  [{violation.kind}] {violation.message}")
            return "\n".join(lines)


class InstrumentedLock:
    """A ``threading.Lock``/``RLock`` stand-in that feeds a sanitizer.

    Delegates everything it does not instrument (``locked``,
    ``_is_owned``, ``_release_save`` ...) to the wrapped lock, so it
    drops into ``Condition``/``queue.Queue`` unchanged.
    """

    def __init__(
        self,
        state: SanitizerState,
        inner: Optional[Any] = None,
        reentrant: bool = False,
        name: Optional[str] = None,
    ) -> None:
        self._state = state
        self._reentrant = reentrant
        self._inner = inner if inner is not None else (
            _REAL_RLOCK() if reentrant else _REAL_LOCK()
        )
        site = name if name is not None else _caller_site()
        kind = "RLock" if reentrant else "Lock"
        self._serial = state.register(f"{kind}({site})")

    # The actual lock protocol ----------------------------------------

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        already_held = self._reentrant and self._serial in set(
            self._state.held_serials()
        )
        start = time.perf_counter()
        got = self._inner.acquire(blocking, timeout)
        now = time.perf_counter()
        if got:
            self._state.on_acquired(
                self._serial, now, now - start, reentrant=already_held
            )
        return got

    def release(self) -> None:
        self._inner.release()
        self._state.on_released(self._serial, time.perf_counter())

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: object) -> None:
        self.release()

    def locked(self) -> bool:
        return bool(self._inner.locked())

    def __getattr__(self, attr: str) -> Any:
        # Condition support: _is_owned/_release_save/_acquire_restore and
        # anything else the inner lock offers pass through untouched.
        return getattr(self._inner, attr)

    def __repr__(self) -> str:
        return f"<InstrumentedLock {self._state.names.get(self._serial)}>"


class Sanitizer:
    """Installs/uninstalls the global patch and owns the state."""

    def __init__(
        self, block_threshold_s: float = DEFAULT_BLOCK_THRESHOLD_S
    ) -> None:
        self.state = SanitizerState(block_threshold_s)
        self._installed = False

    def install(self) -> None:
        if self._installed:
            return
        state = self.state

        def make_lock() -> InstrumentedLock:
            return InstrumentedLock(state, reentrant=False)

        def make_rlock() -> InstrumentedLock:
            return InstrumentedLock(state, reentrant=True)

        threading.Lock = make_lock  # type: ignore[assignment, misc]
        threading.RLock = make_rlock  # type: ignore[assignment, misc]
        self._installed = True

    def uninstall(self) -> None:
        if not self._installed:
            return
        threading.Lock = _REAL_LOCK  # type: ignore[misc]
        threading.RLock = _REAL_RLOCK  # type: ignore[misc]
        self._installed = False

    @property
    def violations(self) -> List[Violation]:
        return list(self.state.violations)


_active: Optional[Sanitizer] = None


def install(
    block_threshold_s: float = DEFAULT_BLOCK_THRESHOLD_S,
) -> Sanitizer:
    """Patch ``threading`` constructors process-wide; returns the sanitizer."""
    global _active
    if _active is None:
        _active = Sanitizer(block_threshold_s)
        _active.install()
    return _active


def uninstall() -> None:
    """Undo :func:`install` and drop the active sanitizer."""
    global _active
    if _active is not None:
        _active.uninstall()
        _active = None


def current() -> Optional[Sanitizer]:
    return _active


# ---------------------------------------------------------------------------
# pytest plugin surface (`pytest -p repro.devtools.sanitize`)
# ---------------------------------------------------------------------------


def pytest_addoption(parser: Any) -> None:
    group = parser.getgroup("lock sanitizer")
    group.addoption(
        "--lock-sanitizer-threshold",
        action="store",
        type=float,
        default=DEFAULT_BLOCK_THRESHOLD_S,
        help=(
            "seconds a lock may wait/hold on an event-loop thread before "
            "the sanitizer reports a violation"
        ),
    )


def pytest_configure(config: Any) -> None:
    threshold = float(
        config.getoption("--lock-sanitizer-threshold", DEFAULT_BLOCK_THRESHOLD_S)
    )
    install(threshold)


def pytest_terminal_summary(
    terminalreporter: Any, exitstatus: int, config: Any
) -> None:
    sanitizer = current()
    if sanitizer is None:
        return
    terminalreporter.write_line("")
    terminalreporter.write_line(sanitizer.state.report())


def pytest_sessionfinish(session: Any, exitstatus: int) -> None:
    sanitizer = current()
    if sanitizer is not None and sanitizer.violations:
        session.exitstatus = 1


def pytest_unconfigure(config: Any) -> None:
    uninstall()
