"""The replint domain rules, REP001–REP007 and REP013.

The flow-aware concurrency pack (REP008–REP012) lives in
:mod:`repro.devtools.concurrency` and is spliced into
:data:`DEFAULT_RULES` below.

Each rule encodes one invariant the library otherwise enforces only by
convention; ``docs/static-analysis.md`` carries the full catalog with
rationale and examples.  Rules are pure AST analyses over the
:class:`~repro.devtools.engine.ProjectIndex` — they never import the
code under analysis.
"""

from __future__ import annotations

import ast
import re
from typing import (
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.devtools.engine import (
    Diagnostic,
    FileContext,
    MethodInfo,
    ProjectIndex,
    ROLE_BENCHMARKS,
    ROLE_EXAMPLES,
    ROLE_LIBRARY,
    ROLE_TESTS,
    Rule,
)

#: Names of numpy's legacy global-RNG functions (module-level
#: ``np.random.X`` calls share hidden process state).
_GLOBAL_NP_RANDOM = {
    "seed",
    "rand",
    "randn",
    "randint",
    "random",
    "random_sample",
    "choice",
    "shuffle",
    "permutation",
    "normal",
    "uniform",
    "exponential",
    "poisson",
    "binomial",
    "standard_normal",
    "sample",
    "bytes",
}

#: Wall-clock attribute calls (monotonic timers are fine; wall-clock
#: reads make runs irreproducible and break the simulated-clock model).
_WALL_CLOCK_TIME = {"time", "time_ns"}
_WALL_CLOCK_DATETIME = {"now", "utcnow", "today", "fromtimestamp"}

_METRIC_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)+$")

#: Recorder methods whose first argument is a metric name.
_RECORDER_METHODS = {
    "inc", "set", "observe", "counter", "gauge", "histogram", "summary",
}

#: Decorator that exempts a function from REP004.
_ASSERT_ALLOWLIST_DECORATOR = "debug_asserts"


def _dotted_parts(node: ast.expr) -> Optional[Tuple[str, ...]]:
    """``a.b.c`` -> ("a", "b", "c"); None for non-name chains."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def _is_none(node: ast.expr) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


#: Both function-definition node flavors (REP006 checks either).
_FuncDef = Union[ast.FunctionDef, ast.AsyncFunctionDef]


class DeterminismRule(Rule):
    """REP001: algorithm code must be deterministic given its seed.

    Flags unseeded ``np.random.default_rng()`` / ``RandomState()``
    construction, any use of numpy's module-level (global-state) RNG
    functions, the stdlib ``random`` module, and wall-clock reads
    (``time.time``, ``datetime.now``) inside library code.  Monotonic
    timers (``perf_counter`` / ``perf_counter_ns``) are explicitly fine:
    they measure, they do not decide.
    """

    rule_id = "REP001"
    title = "seeded-RNG determinism"
    rationale = (
        "Random/MRL99/DCS reproducibility rests on every random draw "
        "flowing from an explicit seed; hidden global RNG state or "
        "wall-clock reads make same-seed runs diverge."
    )
    roles = (ROLE_LIBRARY,)

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith(
                        "random."
                    ):
                        yield self.diagnostic(
                            ctx.path,
                            node,
                            "stdlib `random` uses hidden global state; "
                            "use numpy Generators from an explicit seed "
                            "(repro.sketches.hashing.make_rng)",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    yield self.diagnostic(
                        ctx.path,
                        node,
                        "stdlib `random` uses hidden global state; "
                        "use numpy Generators from an explicit seed",
                    )
            elif isinstance(node, ast.Call):
                yield from self._check_call(ctx, node)

    def _check_call(
        self, ctx: FileContext, node: ast.Call
    ) -> Iterator[Diagnostic]:
        parts = _dotted_parts(node.func)
        if parts is None:
            return
        tail = parts[-1]
        if tail in ("default_rng", "RandomState"):
            unseeded = not node.args or _is_none(node.args[0])
            seeded_by_kw = any(
                kw.arg == "seed" and not _is_none(kw.value)
                for kw in node.keywords
            )
            if unseeded and not seeded_by_kw:
                yield self.diagnostic(
                    ctx.path,
                    node,
                    f"`{'.'.join(parts)}()` without a seed is "
                    "irreproducible; pass an explicit seed "
                    "(None must be an opt-in caller decision)",
                )
            return
        if len(parts) >= 2 and parts[-2] == "random":
            root = parts[0]
            if root in ("np", "numpy") and tail in _GLOBAL_NP_RANDOM:
                yield self.diagnostic(
                    ctx.path,
                    node,
                    f"`{'.'.join(parts)}` draws from numpy's global RNG; "
                    "use a seeded Generator instead",
                )
            return
        if len(parts) == 2 and parts[0] == "time" and tail in _WALL_CLOCK_TIME:
            yield self.diagnostic(
                ctx.path,
                node,
                f"wall-clock `time.{tail}()` is irreproducible; use "
                "`time.perf_counter*` for measurement or the simulated "
                "clock for protocol logic",
            )
            return
        if tail in _WALL_CLOCK_DATETIME and any(
            part in ("datetime", "date") for part in parts[:-1]
        ):
            yield self.diagnostic(
                ctx.path,
                node,
                f"wall-clock `{'.'.join(parts)}()` is irreproducible "
                "inside algorithm code",
            )


class SketchContractRule(Rule):
    """REP002: registered algorithms honor the ``QuantileSketch`` contract.

    Every ``@register``-decorated class must (transitively) subclass
    ``QuantileSketch``, provide a ``validate()`` self-check (its own or
    inherited), and keep any ``extend`` / ``query_batch`` override
    signature-compatible with the base (``self`` plus exactly one
    positional argument, no extra required parameters).
    """

    rule_id = "REP002"
    title = "sketch registry contract"
    rationale = (
        "The harness, snapshot layer, and distributed protocols "
        "construct sketches by registry name and call the base-class "
        "surface blindly; a registered class that drifts from it fails "
        "at a distance."
    )
    roles = (ROLE_LIBRARY,)

    _UNARY_OVERRIDES = ("extend", "query_batch", "quantiles")

    def check_project(
        self, project: ProjectIndex, contexts: Sequence[FileContext]
    ) -> Iterator[Diagnostic]:
        for info in sorted(
            project.classes.values(), key=lambda c: (c.path, c.line)
        ):
            if info.role != ROLE_LIBRARY:
                continue
            if "register" not in info.decorator_names:
                continue
            anchor = _ClassAnchor(info.line)
            is_sketch = project.is_subclass_of(info.name, "QuantileSketch")
            if is_sketch is False:
                yield self.diagnostic(
                    info.path,
                    anchor,
                    f"registered class {info.name} does not subclass "
                    "QuantileSketch",
                )
                continue
            if project.find_method(info.name, "validate") is None:
                yield self.diagnostic(
                    info.path,
                    anchor,
                    f"registered class {info.name} has no validate() "
                    "self-check (own or inherited)",
                )
            for method_name in self._UNARY_OVERRIDES:
                method = info.methods.get(method_name)
                if method is None:
                    continue
                problem = self._signature_problem(method)
                if problem:
                    yield self.diagnostic(
                        info.path,
                        _ClassAnchor(method.line),
                        f"{info.name}.{method_name} {problem} — must stay "
                        "call-compatible with QuantileSketch."
                        f"{method_name}(self, values)",
                    )

    @staticmethod
    def _signature_problem(method: MethodInfo) -> Optional[str]:
        required_pos = len(method.pos_params) - method.pos_defaults
        if required_pos > 2:
            return (
                f"requires {required_pos - 1} positional arguments"
            )
        if len(method.pos_params) < 2 and not method.has_vararg:
            return "takes no positional argument"
        if method.required_kwonly:
            names = ", ".join(method.required_kwonly)
            return f"adds required keyword-only arguments ({names})"
        return None


class _ClassAnchor:
    """Minimal location carrier for project-scope diagnostics."""

    def __init__(self, line: int) -> None:
        self.lineno = line
        self.col_offset = 0


class SnapshotCoverageRule(Rule):
    """REP003: every registered sketch participates in snapshot/restore.

    A registered class must itself carry ``@snapshottable("tag")`` (the
    restore path checks the concrete type, so inheriting a parent's tag
    is not enough), and when a class spells out ``__getstate__`` /
    ``__setstate__`` with literal keys, the keys written must match the
    keys read.
    """

    rule_id = "REP003"
    title = "snapshot coverage"
    rationale = (
        "Checkpointing and fault-tolerant aggregation ship summaries "
        "as snapshot envelopes; a registered algorithm outside the "
        "snapshot registry cannot be checkpointed, and mismatched "
        "getstate/setstate fields corrupt state silently."
    )
    roles = (ROLE_LIBRARY,)

    def check_project(
        self, project: ProjectIndex, contexts: Sequence[FileContext]
    ) -> Iterator[Diagnostic]:
        for info in sorted(
            project.classes.values(), key=lambda c: (c.path, c.line)
        ):
            if info.role != ROLE_LIBRARY:
                continue
            if "register" not in info.decorator_names:
                continue
            anchor = _ClassAnchor(info.line)
            if "snapshottable" not in info.decorator_names:
                key = info.decorator_keys.get("register", info.name.lower())
                yield self.diagnostic(
                    info.path,
                    anchor,
                    f"registered class {info.name} is not @snapshottable; "
                    f'add @snapshottable("{key}") and a validate() '
                    "self-check so it can be checkpointed",
                )
            written = info.getstate_keys
            read = info.setstate_keys
            if written is not None and read is not None:
                missing = sorted(read - written)
                unused = sorted(written - read)
                if missing:
                    yield self.diagnostic(
                        info.path,
                        anchor,
                        f"{info.name}.__setstate__ reads keys never "
                        f"written by __getstate__: {', '.join(missing)}",
                    )
                if unused:
                    yield self.diagnostic(
                        info.path,
                        anchor,
                        f"{info.name}.__getstate__ writes keys never "
                        f"read by __setstate__: {', '.join(unused)}",
                    )


class NoLibraryAssertRule(Rule):
    """REP004: library code raises typed errors, never bare ``assert``.

    ``python -O`` strips asserts, so an invariant guarded by ``assert``
    silently stops being checked in optimized deployments.  Debug-only
    helpers opt out with ``@debug_asserts``
    (:mod:`repro.devtools.marks`).
    """

    rule_id = "REP004"
    title = "no bare assert in library code"
    rationale = (
        "Asserts vanish under `python -O`; invariants must raise typed "
        "errors from repro.core.errors so they survive optimization "
        "and are catchable."
    )
    roles = (ROLE_LIBRARY,)

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        yield from self._walk(ctx, ctx.tree, allowed=False)

    def _walk(
        self, ctx: FileContext, node: ast.AST, allowed: bool
    ) -> Iterator[Diagnostic]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                child_allowed = allowed or any(
                    self._is_allowlist(dec) for dec in child.decorator_list
                )
                yield from self._walk(ctx, child, child_allowed)
            elif isinstance(child, ast.Assert):
                if not allowed:
                    yield self.diagnostic(
                        ctx.path,
                        child,
                        "bare assert disappears under `python -O`; raise "
                        "a typed error from repro.core.errors (or mark "
                        "the helper @debug_asserts if it is test-only)",
                    )
                yield from self._walk(ctx, child, allowed)
            else:
                yield from self._walk(ctx, child, allowed)

    @staticmethod
    def _is_allowlist(dec: ast.expr) -> bool:
        parts = _dotted_parts(dec)
        return parts is not None and parts[-1] == _ASSERT_ALLOWLIST_DECORATOR


class MetricsPreregistrationRule(Rule):
    """REP005: metric names are preregistered in ``DEFAULT_INSTRUMENTS``.

    Every literal metric name passed to a recorder method
    (``inc`` / ``set`` / ``observe`` / ``counter`` / ``gauge`` /
    ``histogram``) must appear in the ``DEFAULT_INSTRUMENTS`` table, so
    Prometheus/JSON exports carry every family at zero instead of
    growing holes that only show up when a code path happens to run.
    """

    rule_id = "REP005"
    title = "metrics preregistration"
    rationale = (
        "Exports preregister DEFAULT_INSTRUMENTS so dashboards see "
        "every family on every run; an unregistered name silently "
        "disappears from runs that do not exercise its code path."
    )
    roles = (ROLE_LIBRARY, ROLE_BENCHMARKS, ROLE_EXAMPLES)

    def __init__(
        self, declared_metrics: Optional[Set[str]] = None
    ) -> None:
        self._declared_override = declared_metrics

    def _declared(self, project: ProjectIndex) -> Optional[Set[str]]:
        if self._declared_override is not None:
            return self._declared_override
        if project.has_metric_declarations:
            return project.declared_metrics
        try:
            from repro.obs.metrics import DEFAULT_INSTRUMENTS
        except ImportError:
            return None
        return {name for _kind, name in DEFAULT_INSTRUMENTS}

    def check_project(
        self, project: ProjectIndex, contexts: Sequence[FileContext]
    ) -> Iterator[Diagnostic]:
        declared = self._declared(project)
        if declared is None:
            return
        for ctx in contexts:
            if ctx.role not in self.roles:
                continue
            yield from self._check_file(ctx, declared)

    def _check_file(
        self, ctx: FileContext, declared: Set[str]
    ) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                not isinstance(func, ast.Attribute)
                or func.attr not in _RECORDER_METHODS
                or not node.args
            ):
                continue
            name = node.args[0]
            if not (
                isinstance(name, ast.Constant) and isinstance(name.value, str)
            ):
                continue
            metric = name.value
            if not _METRIC_NAME_RE.match(metric):
                continue
            if metric not in declared and not self._has_prefix_family(
                metric, declared
            ):
                yield self.diagnostic(
                    ctx.path,
                    node,
                    f"metric {metric!r} is not preregistered in "
                    "DEFAULT_INSTRUMENTS; add it there so exports have "
                    "no holes",
                )

    @staticmethod
    def _has_prefix_family(metric: str, declared: Set[str]) -> bool:
        """Dynamic families: `a.b.` + suffix built at runtime registers
        the prefix; a literal that IS a declared name's prefix is left
        to the declared check itself, so only exact membership counts
        here.  Kept as a hook; currently always False."""
        return False


class WorkerSeedDisciplineRule(Rule):
    """REP006: worker entry points derive every seed from the ShardPlan.

    A function that runs inside a worker process (``_shard_worker``, or
    any ``worker_*`` / ``*_worker`` name) must take a ``plan`` parameter,
    and every RNG it constructs (``make_rng`` / ``default_rng`` /
    ``RandomState``) and every ``seed=`` keyword it passes must be a
    value derived from that plan — a direct ``plan.<method>(...)`` call,
    ``plan.<attr>``, or a local name assigned from one.  REP001 ensures
    seeds exist; this rule ensures *parallel* seeds are reproducible
    functions of the :class:`~repro.parallel.plan.ShardPlan`, so a run
    is deterministic for a fixed (seed, shard count) no matter which
    worker draws first.
    """

    rule_id = "REP006"
    title = "plan-derived worker seeds"
    rationale = (
        "Sharded runs are only reproducible when every worker's random "
        "coins are a pure function of the ShardPlan; a worker that "
        "seeds from anything else (constants, worker ids, ambient "
        "state) silently breaks fixed-plan determinism."
    )
    roles = (ROLE_LIBRARY,)

    _RNG_CONSTRUCTORS: Set[str] = {"make_rng", "default_rng", "RandomState"}

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ) and self._is_worker_entry(node):
                yield from self._check_worker(ctx, node)

    @classmethod
    def _is_worker_entry(cls, fn: _FuncDef) -> bool:
        # Methods are never process entry points; only free functions
        # get handed to a worker process.
        first = (*fn.args.posonlyargs, *fn.args.args)
        if first and first[0].arg in ("self", "cls"):
            return False
        return cls._is_worker_name(fn.name)

    @staticmethod
    def _is_worker_name(name: str) -> bool:
        bare = name.lstrip("_")
        return (
            bare == "worker"
            or bare.startswith("worker_")
            or bare.endswith("_worker")
        )

    @staticmethod
    def _plan_params(fn: _FuncDef) -> Set[str]:
        args = fn.args
        names = [
            arg.arg
            for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs)
        ]
        return {
            name for name in names
            if name == "plan" or name.endswith("_plan")
        }

    def _walk_own_body(self, fn: _FuncDef) -> Iterator[ast.AST]:
        """Walk ``fn`` without descending into nested worker entries
        (those are checked on their own)."""
        stack: List[ast.AST] = list(ast.iter_child_nodes(fn))
        while stack:
            node = stack.pop()
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ) and self._is_worker_entry(node):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))

    def _is_derived(
        self, expr: ast.expr, plan_names: Set[str], derived: Set[str]
    ) -> bool:
        if isinstance(expr, ast.Name):
            return expr.id in derived
        if isinstance(expr, ast.Attribute):
            parts = _dotted_parts(expr)
            return parts is not None and parts[0] in plan_names
        if isinstance(expr, ast.Call):
            parts = _dotted_parts(expr.func)
            if parts is not None and len(parts) >= 2 and (
                parts[0] in plan_names
            ):
                return True
            if (
                parts is not None
                and parts[-1] == "int"
                and len(expr.args) == 1
            ):
                return self._is_derived(expr.args[0], plan_names, derived)
        return False

    def _derived_names(
        self, fn: _FuncDef, plan_names: Set[str]
    ) -> Set[str]:
        derived: Set[str] = set()
        changed = True
        while changed:
            changed = False
            for node in self._walk_own_body(fn):
                if isinstance(node, ast.Assign):
                    targets, value = node.targets, node.value
                elif isinstance(node, ast.AnnAssign) and node.value:
                    targets, value = [node.target], node.value
                else:
                    continue
                for target in targets:
                    if (
                        isinstance(target, ast.Name)
                        and target.id not in derived
                        and self._is_derived(value, plan_names, derived)
                    ):
                        derived.add(target.id)
                        changed = True
        return derived

    def _check_worker(
        self, ctx: FileContext, fn: _FuncDef
    ) -> Iterator[Diagnostic]:
        plan_names = self._plan_params(fn)
        if not plan_names:
            yield self.diagnostic(
                ctx.path,
                fn,
                f"worker entry point {fn.name} takes no ShardPlan; "
                "thread a `plan` parameter through so every seed "
                "derives from it",
            )
            return
        derived = self._derived_names(fn, plan_names)
        for node in self._walk_own_body(fn):
            if not isinstance(node, ast.Call):
                continue
            parts = _dotted_parts(node.func)
            if parts is not None and parts[-1] in self._RNG_CONSTRUCTORS:
                seed_expr: Optional[ast.expr] = (
                    node.args[0] if node.args else None
                )
                if seed_expr is None:
                    for kw in node.keywords:
                        if kw.arg == "seed":
                            seed_expr = kw.value
                if seed_expr is None or not self._is_derived(
                    seed_expr, plan_names, derived
                ):
                    yield self.diagnostic(
                        ctx.path,
                        node,
                        f"`{'.'.join(parts)}` in worker entry point "
                        f"{fn.name} is not seeded from the plan; derive "
                        "the seed via plan.worker_seed()/sketch_seed()",
                    )
                continue
            for kw in node.keywords:
                if kw.arg == "seed" and not self._is_derived(
                    kw.value, plan_names, derived
                ):
                    yield self.diagnostic(
                        ctx.path,
                        node,
                        f"seed= passed in worker entry point {fn.name} "
                        "does not derive from the plan; use "
                        "plan.worker_seed()/sketch_seed() (directly or "
                        "via a local assignment)",
                    )


class FaultInjectionDisciplineRule(Rule):
    """REP007: process-kill primitives route through a seeded FaultPlan.

    Flags ``os.kill`` / ``os.killpg`` / ``os._exit`` / ``os.abort`` /
    ``signal.pthread_kill`` and ``.terminate()`` / ``.kill()`` method
    calls in library and test code unless the innermost enclosing
    function visibly works with a fault plan — it references a name
    (parameter, local, or attribute) spelled ``plan`` / ``faults`` /
    ``fault_plan`` / ``injector`` or ending in ``_plan`` /
    ``_injector``.  Module-level kills are always flagged.

    Supervision code that reaps processes for *cleanup* rather than
    fault injection suppresses the specific line with
    ``# replint: disable=REP007`` — the comment is the audit trail.
    """

    rule_id = "REP007"
    title = "plan-routed process faults"
    rationale = (
        "Chaos tests are only reproducible when every induced crash "
        "flows from a seeded FaultPlan; an ad-hoc os.kill/terminate() "
        "is a fault no seed can replay, so kills must ride a plan (or "
        "carry an explicit suppression marking them as supervision)."
    )
    roles = (ROLE_LIBRARY, ROLE_TESTS)

    #: Fully-dotted process-fault primitives.
    _KILL_DOTTED: Set[Tuple[str, ...]] = {
        ("os", "kill"),
        ("os", "killpg"),
        ("os", "_exit"),
        ("os", "abort"),
        ("signal", "pthread_kill"),
    }
    #: Method names that end a process regardless of receiver type.
    _KILL_METHODS = {"terminate", "kill"}
    #: Identifiers that mark a function as fault-plan aware.
    _PLAN_EXACT = {"plan", "faults", "fault_plan", "injector"}
    _PLAN_SUFFIXES = ("_plan", "_injector")

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        yield from self._walk(ctx, ctx.tree, enclosing=None)

    def _walk(
        self, ctx: FileContext, node: ast.AST, enclosing: Optional[_FuncDef]
    ) -> Iterator[Diagnostic]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._walk(ctx, child, enclosing=child)
                continue
            if isinstance(child, ast.Call):
                diag = self._check_call(ctx, child, enclosing)
                if diag is not None:
                    yield diag
            yield from self._walk(ctx, child, enclosing)

    def _check_call(
        self,
        ctx: FileContext,
        node: ast.Call,
        enclosing: Optional[_FuncDef],
    ) -> Optional[Diagnostic]:
        label = self._kill_label(node)
        if label is None:
            return None
        if enclosing is not None and self._references_plan(enclosing):
            return None
        where = (
            "at module level"
            if enclosing is None
            else f"in {enclosing.name}, which never touches a fault plan"
        )
        return self.diagnostic(
            ctx.path,
            node,
            f"`{label}` {where}; induced process faults must flow from "
            "a seeded repro.distributed.faults.FaultPlan (pass the plan/"
            "injector into this function), or mark pure supervision "
            "cleanup with `# replint: disable=REP007`",
        )

    @classmethod
    def _kill_label(cls, node: ast.Call) -> Optional[str]:
        parts = _dotted_parts(node.func)
        if parts is not None and parts in cls._KILL_DOTTED:
            return ".".join(parts)
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in cls._KILL_METHODS:
            if parts is not None:
                return ".".join(parts) + "()"
            return f".{func.attr}()"
        return None

    @classmethod
    def _is_planish(cls, name: str) -> bool:
        return name in cls._PLAN_EXACT or name.endswith(cls._PLAN_SUFFIXES)

    @classmethod
    def _references_plan(cls, fn: _FuncDef) -> bool:
        args = fn.args
        params = (
            *args.posonlyargs, *args.args, *args.kwonlyargs,
        )
        if any(cls._is_planish(arg.arg) for arg in params):
            return True
        for node in ast.walk(fn):
            if isinstance(node, ast.Name) and cls._is_planish(node.id):
                return True
            if isinstance(node, ast.Attribute) and cls._is_planish(node.attr):
                return True
        return False


class HotPathHashConstructionRule(Rule):
    """REP013: no per-call hash-table construction in ingest/query kernels.

    Flags construction of hash machinery — ``KWiseHash`` / ``SignHash``
    instances, RNGs (``make_rng`` / ``default_rng``), plane caches, or
    direct plane builds (``_compute_bucket_plane`` and friends) — inside
    the hot batch kernels ``extend`` / ``update`` / ``update_batch`` /
    ``estimate`` / ``estimate_batch`` in library code.  Hash functions
    are fixed maps once their coefficients are drawn: rebuilding one per
    call silently reintroduces the rehash-per-batch cost the hash-plane
    cache exists to eliminate (and a *fresh* hash would change the
    sketch's answers).  Build hash objects in ``__init__`` and fetch
    plane tables from :mod:`repro.sketches.hashplan`.
    """

    rule_id = "REP013"
    title = "cached hash planes in hot kernels"
    rationale = (
        "The turnstile hot path is only fast because hash evaluations "
        "over reduced universes are materialized once and reused; any "
        "hash-table construction inside an extend/update_batch body "
        "re-pays that cost per call — and a freshly drawn hash function "
        "computes a different map, corrupting the sketch."
    )
    roles = (ROLE_LIBRARY,)

    #: The batch kernels that form the ingest/query hot path.
    _HOT_METHODS = {
        "extend", "update", "update_batch", "estimate", "estimate_batch",
    }
    #: Constructors whose per-call use the rule forbids.
    _HASH_CONSTRUCTION = {
        "KWiseHash",
        "SignHash",
        "HashPlaneCache",
        "make_rng",
        "default_rng",
        "_compute_bucket_plane",
        "_compute_sign_plane",
    }

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name in self._HOT_METHODS
            ):
                yield from self._check_kernel(ctx, node)

    def _check_kernel(
        self, ctx: FileContext, fn: _FuncDef
    ) -> Iterator[Diagnostic]:
        for node in ast.walk(fn):
            if not isinstance(node, ast.Call):
                continue
            label = self._construction_label(node.func)
            if label is not None:
                yield self.diagnostic(
                    ctx.path,
                    node,
                    f"`{label}` constructed inside hot kernel "
                    f"`{fn.name}`; hash functions and plane tables are "
                    "fixed maps — build them in __init__ and fetch "
                    "cached planes via repro.sketches.hashplan",
                )

    @classmethod
    def _construction_label(cls, func: ast.expr) -> Optional[str]:
        if isinstance(func, ast.Name) and func.id in cls._HASH_CONSTRUCTION:
            return func.id
        parts = _dotted_parts(func)
        if parts is not None and parts[-1] in cls._HASH_CONSTRUCTION:
            return ".".join(parts)
        return None


from repro.devtools.concurrency import CONCURRENCY_RULES  # noqa: E402

#: The rule set the CLI runs by default, in catalog order.
DEFAULT_RULES: Tuple[Rule, ...] = (
    DeterminismRule(),
    SketchContractRule(),
    SnapshotCoverageRule(),
    NoLibraryAssertRule(),
    MetricsPreregistrationRule(),
    WorkerSeedDisciplineRule(),
    FaultInjectionDisciplineRule(),
) + CONCURRENCY_RULES + (HotPathHashConstructionRule(),)

#: rule_id -> rule instance, for --select and docs generation.
RULES_BY_ID: Dict[str, Rule] = {rule.rule_id: rule for rule in DEFAULT_RULES}
