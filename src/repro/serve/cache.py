"""Epoch-invalidated answer cache with request coalescing.

A sealed sketch's quantile vector is immutable until the next ingest
flush, so the read path never needs to compute the same answer twice
within an epoch.  Keys are ``(sketch, epoch, kind, params)`` tuples:

* **hit** — the answer was computed earlier this epoch; returned in one
  ordered-dict lookup.
* **coalesced** — an identical query is being computed right now; the
  caller awaits the in-flight future instead of duplicating the work.
* **miss** — this caller computes, stores, and wakes any coalesced
  waiters.

Invalidation is atomic with respect to the event loop: a flush bumps
the sketch's epoch (making every old key unreachable) and then calls
:meth:`AnswerCache.invalidate`, which drops the sketch's completed
entries *and* marks its in-flight computations stale in the same
scheduling step — no await point separates the two.  A stale in-flight
computation resolves to the :data:`STALE` sentinel; waiters (and the
computer itself) re-read the current epoch and retry, so a flush
mid-flight can never publish a pre-flush answer to a post-flush reader,
and a post-flush computation can never be filed under a pre-flush key.

Capacity is bounded: completed entries evict LRU-first past
``capacity`` (see docs/serving.md for the footprint math).
"""

from __future__ import annotations

import asyncio
from collections import OrderedDict
from typing import Any, Awaitable, Callable, Dict, Hashable, Tuple

from repro.core.errors import InvalidParameterError
from repro.obs import metrics as obs_metrics

#: Sentinel returned by :meth:`AnswerCache.get_or_compute` when the
#: computation was invalidated mid-flight; callers re-key and retry.
STALE = object()

#: Default maximum number of completed answers kept.
DEFAULT_CAPACITY = 4096

CacheKey = Tuple[Any, ...]
Supplier = Callable[[], Awaitable[Any]]


class _Inflight:
    """One in-progress computation: a future plus a staleness flag."""

    __slots__ = ("future", "stale")

    def __init__(self, future: "asyncio.Future[Any]") -> None:
        self.future = future
        self.stale = False


class AnswerCache:
    """Coalescing (sketch, epoch)-keyed cache of query answers.

    Single-event-loop use only (the daemon's); nothing here is
    thread-safe, and it does not need to be — mutation and invalidation
    both happen between await points.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise InvalidParameterError(
                f"cache capacity must be >= 1, got {capacity!r}"
            )
        self.capacity = capacity
        self._done: "OrderedDict[CacheKey, Any]" = OrderedDict()
        self._inflight: Dict[CacheKey, _Inflight] = {}

    def __len__(self) -> int:
        return len(self._done)

    @property
    def inflight(self) -> int:
        return len(self._inflight)

    async def get_or_compute(
        self, key: CacheKey, supplier: Supplier
    ) -> Tuple[Any, str]:
        """Answer ``key`` from cache, a shared in-flight future, or
        ``supplier``.

        Returns ``(value, status)`` with status one of ``"hit"``,
        ``"coalesced"``, ``"miss"``, or ``"stale"`` (value is
        :data:`STALE`; the caller must re-derive the key from the
        current epoch and retry).
        """
        rec = obs_metrics.recorder()
        if key in self._done:
            self._done.move_to_end(key)
            if rec.enabled:
                rec.inc("serve.cache.hits", 1)
            return self._done[key], "hit"

        inflight = self._inflight.get(key)
        if inflight is not None:
            if rec.enabled:
                rec.inc("serve.cache.coalesced", 1)
            value = await inflight.future
            if inflight.stale or value is STALE:
                if rec.enabled:
                    rec.inc("serve.cache.stale_retries", 1)
                return STALE, "stale"
            return value, "coalesced"

        if rec.enabled:
            rec.inc("serve.cache.misses", 1)
        inflight = _Inflight(asyncio.get_running_loop().create_future())
        self._inflight[key] = inflight
        try:
            value = await supplier()
        except BaseException:
            # Errors are not cached; waiters retry and surface the same
            # error themselves (a resolved-to-STALE future never leaves
            # an unretrieved exception behind).
            self._inflight.pop(key, None)
            inflight.stale = True
            if not inflight.future.done():
                inflight.future.set_result(STALE)
            raise
        if inflight.stale:
            # Invalidated while computing: the value was produced from a
            # state that may already include the next epoch's data, so
            # it must not be published under this (pre-flush) key.
            if not inflight.future.done():
                inflight.future.set_result(STALE)
            if rec.enabled:
                rec.inc("serve.cache.stale_retries", 1)
            return STALE, "stale"
        self._inflight.pop(key, None)
        self._store(key, value)
        if not inflight.future.done():
            inflight.future.set_result(value)
        return value, "miss"

    def _store(self, key: CacheKey, value: Any) -> None:
        self._done[key] = value
        self._done.move_to_end(key)
        rec = obs_metrics.recorder()
        evicted = 0
        while len(self._done) > self.capacity:
            self._done.popitem(last=False)
            evicted += 1
        if rec.enabled:
            if evicted:
                rec.inc("serve.cache.evictions", evicted)
            rec.set("serve.cache.entries", len(self._done))

    def invalidate(self, sketch_name: Hashable) -> int:
        """Atomically drop ``sketch_name``'s entries and mark its
        in-flight computations stale.  Returns how many completed
        entries were dropped."""
        dropped = [k for k in self._done if k and k[0] == sketch_name]
        for key in dropped:
            del self._done[key]
        for key in [
            k for k in self._inflight if k and k[0] == sketch_name
        ]:
            self._inflight.pop(key).stale = True
        rec = obs_metrics.recorder()
        if rec.enabled:
            rec.inc("serve.cache.invalidations", 1)
            rec.set("serve.cache.entries", len(self._done))
        return len(dropped)

    def clear(self) -> None:
        self._done.clear()
        for inflight in self._inflight.values():
            inflight.stale = True
        self._inflight.clear()
        rec = obs_metrics.recorder()
        if rec.enabled:
            rec.set("serve.cache.entries", 0)

    def stats(self) -> Dict[str, int]:
        return {
            "entries": len(self._done),
            "inflight": len(self._inflight),
            "capacity": self.capacity,
        }
