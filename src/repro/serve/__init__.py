"""The always-on quantile query tier.

A daemon (:mod:`repro.serve.daemon`) owns a registry of named live
sketches (:mod:`repro.serve.registry`), ingests through the same batch
kernels as the offline harness, and answers ``quantile`` / ``rank`` /
``cdf`` / batched queries over HTTP/JSON through an epoch-invalidated,
request-coalescing answer cache (:mod:`repro.serve.cache`).  Flushed
epochs seal to snapshot envelopes for warm restarts and read-replica
fan-out.  The orchestration lives in :mod:`repro.serve.service`;
:mod:`repro.serve.client` is a small synchronous client and
:mod:`repro.serve.loadgen` the deterministic load generator behind
``benchmarks/bench_serve.py``.

Operator handbook: docs/serving.md.
"""

from repro.serve.cache import AnswerCache, STALE
from repro.serve.client import ServeClient, ServeClientError
from repro.serve.daemon import (
    DaemonHandle,
    QuantileDaemon,
    serve_in_thread,
)
from repro.serve.registry import (
    DuplicateSketchError,
    LiveSketch,
    ServeRegistry,
    SketchSpec,
    UnknownSketchError,
)
from repro.serve.service import QuantileService

__all__ = [
    "AnswerCache",
    "STALE",
    "ServeClient",
    "ServeClientError",
    "DaemonHandle",
    "QuantileDaemon",
    "serve_in_thread",
    "DuplicateSketchError",
    "LiveSketch",
    "ServeRegistry",
    "SketchSpec",
    "UnknownSketchError",
    "QuantileService",
]
