"""The always-on query tier: an asyncio HTTP/JSON quantile daemon.

Zero dependencies beyond the standard library: requests are parsed
straight off asyncio streams (HTTP/1.1 with keep-alive), routed to a
:class:`~repro.serve.service.QuantileService`, and answered as JSON.
The observability endpoints ride alongside the query routes — the same
``/metrics`` Prometheus text and ``/healthz`` JSON the telemetry plane
serves elsewhere — and every request's duration is dogfooded into the
daemon's own KLL summary (``latency.serve.request_ns``), so the p99 the
operator reads comes with the sketch's rank guarantee.

Endpoint reference (full request/response examples in
docs/serving.md):

====== ================================== ===========================
method path                               action
====== ================================== ===========================
GET    /v1/sketches                       list served sketches
POST   /v1/sketches                       create (name + spec in body)
GET    /v1/sketches/{name}                one sketch's info
DELETE /v1/sketches/{name}                drop
POST   /v1/sketches/{name}/ingest         buffer values (opt. flush /
                                          parallel workers)
POST   /v1/sketches/{name}/flush          apply pending, bump epoch
GET    /v1/sketches/{name}/quantile       ?phi=0.5,0.99
GET    /v1/sketches/{name}/rank           ?value=12,99
GET    /v1/sketches/{name}/cdf            ?points=20
POST   /v1/query                          coalesced quantile batch
GET    /v1/sketches/{name}/snapshot       sealed envelope (replica
                                          fan-out)
POST   /v1/sketches/{name}/restore        install shipped envelope
GET    /v1/stats                          service + cache statistics
GET    /metrics                           Prometheus exposition
GET    /healthz                           liveness JSON
====== ================================== ===========================

Boot from the CLI (``python -m repro serve --port 8123 --create
"lat,kll,0.001,seed=7"``), in-process (:func:`serve_in_thread`, which
tests, doctests, and the benchmark use), or embed
:class:`QuantileDaemon` in an existing event loop.
"""

from __future__ import annotations

import argparse
import asyncio
import base64
import binascii
import json
import sys
import threading
import time
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.core.errors import (
    CorruptSummaryError,
    EmptySummaryError,
    InvalidParameterError,
    ReproError,
)
from repro.obs import events as obs_events
from repro.obs import metrics as obs_metrics
from repro.obs.export import to_prometheus
from repro.serve.registry import (
    DuplicateSketchError,
    SketchSpec,
    UnknownSketchError,
)
from repro.serve.service import QuantileService

#: Content type of the Prometheus text exposition format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Hard cap on request body size (ingest batches are chunked anyway).
MAX_BODY_BYTES = 64 * 1024 * 1024

#: Hard cap on header section size.
MAX_HEADER_BYTES = 16 * 1024

_REASONS = {
    200: "OK", 201: "Created", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict", 413: "Payload Too Large",
    500: "Internal Server Error",
}


class _HttpError(Exception):
    """Internal: carries an HTTP status + JSON error payload."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


def _error_status(exc: Exception) -> int:
    if isinstance(exc, UnknownSketchError):
        return 404
    if isinstance(exc, DuplicateSketchError):
        return 409
    if isinstance(
        exc,
        (InvalidParameterError, EmptySummaryError, CorruptSummaryError),
    ):
        return 400
    return 500


class QuantileDaemon:
    """Serve a :class:`QuantileService` over HTTP on an asyncio loop.

    Args:
        service: the service to expose (a fresh in-memory one if None).
        host: bind address; loopback by default (put a real ingress in
            front for anything else).
        port: TCP port; 0 picks a free one (read it back via ``port``).
        latency_log: optional list collecting every request's duration
            in ns — the benchmark's exact offline baseline for checking
            the dogfooded summary's p99.  Leave None in production.
    """

    def __init__(
        self,
        service: Optional[QuantileService] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        latency_log: Optional[List[int]] = None,
    ) -> None:
        if not (0 <= port <= 65535):
            raise InvalidParameterError(
                f"port must be in [0, 65535], got {port!r}"
            )
        self.service = service if service is not None else QuantileService()
        self.host = host
        self._requested_port = port
        self.latency_log = latency_log
        self._server: Optional[asyncio.AbstractServer] = None

    # -- lifecycle ------------------------------------------------------

    @property
    def port(self) -> int:
        if self._server is None or not self._server.sockets:
            return self._requested_port
        return int(self._server.sockets[0].getsockname()[1])

    def url(self, path: str = "/") -> str:
        return f"http://{self.host}:{self.port}{path}"

    async def start(self) -> "QuantileDaemon":
        if self._server is not None:
            return self
        recovered = self.service.recover()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self._requested_port
        )
        rec = obs_metrics.recorder()
        if rec.enabled:
            rec.set("serve.up", 1)
        obs_events.record_event(
            "serve.start", host=self.host, port=self.port,
            recovered=recovered,
        )
        return self

    async def stop(self) -> None:
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        self._server = None
        rec = obs_metrics.recorder()
        if rec.enabled:
            rec.set("serve.up", 0)

    async def run_forever(self) -> None:
        """Start and serve until cancelled (the CLI entry point)."""
        await self.start()
        try:
            await asyncio.Event().wait()
        finally:
            await self.stop()

    # -- connection handling -------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, path, query, headers, body = request
                close = headers.get("connection", "").lower() == "close"
                start = time.perf_counter_ns()
                status, content_type, payload, endpoint = (
                    await self._route(method, path, query, body)
                )
                elapsed = time.perf_counter_ns() - start
                self._account(endpoint, status, elapsed)
                await self._respond(
                    writer, status, content_type, payload, close
                )
                if close:
                    break
        except (
            ConnectionError, asyncio.IncompleteReadError, TimeoutError
        ):
            pass  # client went away; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, Dict[str, List[str]], Dict[str, str],
                        bytes]]:
        try:
            request_line = await reader.readline()
        except (ConnectionError, OSError):
            return None
        if not request_line or request_line in (b"\r\n", b"\n"):
            return None
        parts = request_line.decode("latin-1").strip().split()
        if len(parts) != 3:
            raise _HttpError(400, "malformed request line")
        method, target, _version = parts
        headers: Dict[str, str] = {}
        header_bytes = 0
        while True:
            line = await reader.readline()
            header_bytes += len(line)
            if header_bytes > MAX_HEADER_BYTES:
                raise _HttpError(400, "header section too large")
            if line in (b"\r\n", b"\n", b""):
                break
            key, _sep, value = line.decode("latin-1").partition(":")
            headers[key.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            raise _HttpError(400, "bad Content-Length") from None
        if length > MAX_BODY_BYTES:
            raise _HttpError(413, "request body too large")
        body = await reader.readexactly(length) if length else b""
        parsed = urlparse(target)
        return (
            method.upper(),
            parsed.path.rstrip("/") or "/",
            parse_qs(parsed.query),
            headers,
            body,
        )

    def _account(self, endpoint: str, status: int, elapsed_ns: int) -> None:
        rec = obs_metrics.recorder()
        if rec.enabled:
            rec.inc("serve.requests", 1, endpoint=endpoint)
            if status >= 400:
                rec.inc("serve.errors", 1)
            rec.summary("latency.serve.request_ns").observe(elapsed_ns)
        if self.latency_log is not None:
            self.latency_log.append(elapsed_ns)

    # -- routing --------------------------------------------------------

    async def _route(
        self,
        method: str,
        path: str,
        query: Dict[str, List[str]],
        body: bytes,
    ) -> Tuple[int, str, bytes, str]:
        """Dispatch one request; returns (status, ctype, body, endpoint
        label) with the label normalized to the route pattern so metric
        cardinality stays bounded."""
        try:
            return await self._dispatch(method, path, query, body)
        except _HttpError as exc:
            return (
                exc.status,
                "application/json",
                _json_bytes({"error": exc.message}),
                "(error)",
            )
        except ReproError as exc:
            return (
                _error_status(exc),
                "application/json",
                _json_bytes({
                    "error": str(exc), "type": type(exc).__name__,
                }),
                "(error)",
            )
        except Exception as exc:  # defensive: the daemon must not die
            obs_events.record_event(
                "serve.unhandled_error",
                error=str(exc),
                type=type(exc).__name__,
            )
            return (
                500,
                "application/json",
                _json_bytes({
                    "error": str(exc), "type": type(exc).__name__,
                }),
                "(error)",
            )

    async def _dispatch(
        self,
        method: str,
        path: str,
        query: Dict[str, List[str]],
        body: bytes,
    ) -> Tuple[int, str, bytes, str]:
        service = self.service
        if path == "/metrics" and method == "GET":
            registry = obs_metrics.recorder()
            text = (
                to_prometheus(registry)
                if isinstance(registry, obs_metrics.MetricsRegistry)
                else ""
            )
            return (
                200, PROMETHEUS_CONTENT_TYPE, text.encode("utf-8"),
                "/metrics",
            )
        if path == "/healthz" and method == "GET":
            payload = {
                "status": "ok",
                "sketches": len(service.registry),
                "epochs": {
                    info["name"]: info["epoch"]
                    for info in service.infos()
                },
                "collecting": isinstance(
                    obs_metrics.recorder(), obs_metrics.MetricsRegistry
                ),
            }
            return 200, "application/json", _json_bytes(payload), "/healthz"
        if path == "/v1/stats" and method == "GET":
            return (
                200, "application/json", _json_bytes(service.stats()),
                "/v1/stats",
            )
        if path == "/v1/sketches":
            if method == "GET":
                return (
                    200, "application/json",
                    _json_bytes({"sketches": service.infos()}),
                    "/v1/sketches",
                )
            if method == "POST":
                payload = _json_body(body)
                name = payload.get("name")
                if not isinstance(name, str):
                    raise _HttpError(400, "create needs a 'name' string")
                info = await service.create(
                    name, SketchSpec.from_dict(payload)
                )
                return (
                    201, "application/json", _json_bytes(info),
                    "/v1/sketches",
                )
            raise _HttpError(405, f"{method} not allowed on {path}")
        if path == "/v1/query" and method == "POST":
            payload = _json_body(body)
            queries = payload.get("queries")
            if not isinstance(queries, list) or not queries:
                raise _HttpError(
                    400, "batch query needs a non-empty 'queries' list"
                )
            results = await service.query_batch(queries)
            return (
                200, "application/json",
                _json_bytes({"results": results}),
                "/v1/query",
            )

        segments = path.split("/")
        # /v1/sketches/{name}[/{action}]
        if (
            len(segments) in (4, 5)
            and segments[1] == "v1"
            and segments[2] == "sketches"
        ):
            name = segments[3]
            action = segments[4] if len(segments) == 5 else None
            return await self._sketch_route(
                method, name, action, query, body
            )
        raise _HttpError(404, f"unknown path {path!r}")

    async def _sketch_route(
        self,
        method: str,
        name: str,
        action: Optional[str],
        query: Dict[str, List[str]],
        body: bytes,
    ) -> Tuple[int, str, bytes, str]:
        service = self.service
        if action is None:
            if method == "GET":
                return (
                    200, "application/json",
                    _json_bytes(service.info(name)),
                    "/v1/sketches/{name}",
                )
            if method == "DELETE":
                await service.drop(name)
                return (
                    200, "application/json",
                    _json_bytes({"dropped": name}),
                    "/v1/sketches/{name}",
                )
            raise _HttpError(405, f"{method} not allowed here")
        label = "/v1/sketches/{name}/" + action
        if action == "ingest" and method == "POST":
            payload = _json_body(body)
            values = payload.get("values")
            if not isinstance(values, list):
                raise _HttpError(400, "ingest needs a 'values' list")
            workers = payload.get("workers")
            result = await service.ingest(
                name,
                values,
                flush=bool(payload.get("flush", False)),
                workers=None if workers is None else int(workers),
            )
            return 200, "application/json", _json_bytes(result), label
        if action == "flush" and method == "POST":
            advanced = await service.flush(name)
            info = service.info(name)
            return (
                200, "application/json",
                _json_bytes({
                    "name": name,
                    "flushed": advanced,
                    "epoch": info["epoch"],
                    "n": info["n"],
                }),
                label,
            )
        if action == "quantile" and method == "GET":
            phis = _float_list(query, "phi", default=[0.5])
            return (
                200, "application/json",
                _json_bytes(await service.quantiles(name, phis)),
                label,
            )
        if action == "rank" and method == "GET":
            targets = _float_list(query, "value", default=None)
            if targets is None:
                raise _HttpError(400, "rank needs ?value=v1,v2,...")
            return (
                200, "application/json",
                _json_bytes(await service.ranks(name, targets)),
                label,
            )
        if action == "cdf" and method == "GET":
            raw = query.get("points", ["10"])[-1]
            try:
                points = int(raw)
            except ValueError:
                raise _HttpError(400, f"bad points {raw!r}") from None
            return (
                200, "application/json",
                _json_bytes(await service.cdf(name, points)),
                label,
            )
        if action == "snapshot" and method == "GET":
            exported = service.registry.export_envelope(name)
            exported["envelope_b64"] = base64.b64encode(
                exported.pop("envelope")
            ).decode("ascii")
            return (
                200, "application/json", _json_bytes(exported), label,
            )
        if action == "restore" and method == "POST":
            payload = _json_body(body)
            blob_b64 = payload.get("envelope_b64")
            if not isinstance(blob_b64, str):
                raise _HttpError(
                    400, "restore needs an 'envelope_b64' string"
                )
            try:
                envelope = base64.b64decode(
                    blob_b64.encode("ascii"), validate=True
                )
            except (binascii.Error, ValueError):
                raise _HttpError(400, "envelope_b64 is not base64") from None
            spec = SketchSpec.from_dict(payload.get("spec", {}))
            entry = service.registry.restore_envelope(
                name, envelope, spec, int(payload.get("epoch", 1))
            )
            self.service.cache.invalidate(name)
            return (
                200, "application/json", _json_bytes(entry.info()), label,
            )
        raise _HttpError(404, f"unknown action {action!r} for {name!r}")

    # -- response writing ----------------------------------------------

    @staticmethod
    async def _respond(
        writer: asyncio.StreamWriter,
        status: int,
        content_type: str,
        body: bytes,
        close: bool,
    ) -> None:
        reason = _REASONS.get(status, "OK")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'close' if close else 'keep-alive'}\r\n"
            "\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()


def _json_bytes(payload: Any) -> bytes:
    return json.dumps(payload).encode("utf-8")


def _json_body(body: bytes) -> Dict[str, Any]:
    if not body:
        raise _HttpError(400, "request body must be JSON")
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise _HttpError(400, f"bad JSON body: {exc}") from None
    if not isinstance(payload, dict):
        raise _HttpError(400, "JSON body must be an object")
    return payload


def _float_list(
    query: Dict[str, List[str]], key: str,
    default: Optional[List[float]],
) -> Optional[List[float]]:
    if key not in query:
        return default
    out: List[float] = []
    for chunk in query[key]:
        for part in chunk.split(","):
            part = part.strip()
            if not part:
                continue
            try:
                out.append(float(part))
            except ValueError:
                raise _HttpError(
                    400, f"bad {key} value {part!r}"
                ) from None
    if not out:
        return default
    return out


# -- in-thread embedding ------------------------------------------------


class DaemonHandle:
    """A daemon running on its own event loop in a background thread.

    What tests, doctests, and the benchmark hold: ``url``/``port`` to
    reach it, ``call`` to run service coroutines on the daemon's loop,
    and ``stop`` to shut everything down.
    """

    def __init__(
        self,
        daemon: QuantileDaemon,
        loop: asyncio.AbstractEventLoop,
        thread: threading.Thread,
    ) -> None:
        self.daemon = daemon
        self._loop = loop
        self._thread = thread

    @property
    def service(self) -> QuantileService:
        return self.daemon.service

    @property
    def port(self) -> int:
        return self.daemon.port

    def url(self, path: str = "/") -> str:
        return self.daemon.url(path)

    def call(self, coro: Any, timeout: float = 30.0) -> Any:
        """Run a coroutine on the daemon's loop and return its result."""
        future = asyncio.run_coroutine_threadsafe(coro, self._loop)
        return future.result(timeout=timeout)

    def stop(self, timeout: float = 10.0) -> None:
        if self._thread.is_alive():
            asyncio.run_coroutine_threadsafe(
                self.daemon.stop(), self._loop
            ).result(timeout=timeout)
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=timeout)

    def __enter__(self) -> "DaemonHandle":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.stop()


def serve_in_thread(
    service: Optional[QuantileService] = None,
    host: str = "127.0.0.1",
    port: int = 0,
    latency_log: Optional[List[int]] = None,
) -> DaemonHandle:
    """Boot a daemon on a fresh event loop in a daemon thread.

    Returns once the socket is bound.  The caller owns shutdown via
    :meth:`DaemonHandle.stop` (or use the handle as a context manager).
    """
    daemon = QuantileDaemon(
        service=service, host=host, port=port, latency_log=latency_log
    )
    loop = asyncio.new_event_loop()
    started = threading.Event()
    failure: List[BaseException] = []

    def _run() -> None:
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(daemon.start())
        # Not swallowed: the caller re-raises whatever lands in
        # ``failure`` once ``started`` fires (see below).
        except BaseException as exc:  # replint: disable=REP012
            failure.append(exc)
            started.set()
            return
        started.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    thread = threading.Thread(
        target=_run, name="repro-serve", daemon=True
    )
    thread.start()
    started.wait(timeout=30.0)
    if failure:
        raise failure[0]
    return DaemonHandle(daemon, loop, thread)


# -- CLI ----------------------------------------------------------------


def _parse_create(text: str) -> Tuple[str, SketchSpec]:
    """``name,algorithm,eps[,universe_log2=B][,seed=S]`` -> (name, spec)."""
    parts = [part.strip() for part in text.split(",") if part.strip()]
    if len(parts) < 3:
        raise argparse.ArgumentTypeError(
            f"--create wants 'name,algorithm,eps[,...]', got {text!r}"
        )
    name, algorithm, eps = parts[0], parts[1], parts[2]
    extras: Dict[str, int] = {}
    for part in parts[3:]:
        key, sep, value = part.partition("=")
        if not sep or key not in ("universe_log2", "seed"):
            raise argparse.ArgumentTypeError(
                f"unknown --create option {part!r} "
                "(use universe_log2=B or seed=S)"
            )
        try:
            extras[key] = int(value)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"bad integer in --create option {part!r}"
            ) from None
    try:
        spec = SketchSpec(
            algorithm=algorithm, eps=float(eps),
            universe_log2=extras.get("universe_log2"),
            seed=extras.get("seed"),
        )
    except (ValueError, ReproError) as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None
    return name, spec


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Always-on quantile query daemon (HTTP/JSON).",
    )
    parser.add_argument(
        "--host", default="127.0.0.1",
        help="bind address (default: loopback)",
    )
    parser.add_argument(
        "--port", type=int, default=0,
        help="TCP port (default: 0 = pick a free one, printed on boot)",
    )
    parser.add_argument(
        "--persist-dir", default=None, metavar="DIR",
        help="seal every flushed epoch to DIR and warm-restart from it "
             "on boot (see docs/serving.md)",
    )
    parser.add_argument(
        "--create", action="append", default=[], type=_parse_create,
        metavar="NAME,ALGO,EPS[,universe_log2=B][,seed=S]",
        help="create a sketch at boot (repeatable), e.g. "
             "--create 'lat,kll,0.001,seed=7'",
    )
    parser.add_argument(
        "--flush-threshold", type=int, default=65536, metavar="N",
        help="auto-flush once N elements are pending (0 disables; "
             "default 65536)",
    )
    parser.add_argument(
        "--cache-capacity", type=int, default=4096, metavar="N",
        help="answer-cache entry cap (default 4096)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro serve ...`` entry point."""
    args = make_parser().parse_args(argv)
    from repro.serve.cache import AnswerCache

    obs_metrics.enable(obs_metrics.MetricsRegistry())
    service = QuantileService(
        persist_dir=args.persist_dir,
        flush_threshold=args.flush_threshold,
        cache=AnswerCache(capacity=args.cache_capacity),
    )
    daemon = QuantileDaemon(
        service=service, host=args.host, port=args.port
    )

    async def _serve() -> None:
        await daemon.start()
        for name, spec in args.create:
            if name not in service.registry:
                await service.create(name, spec)
        print(
            f"# serving quantiles on {daemon.url()} "
            f"(sketches: {', '.join(service.registry.names()) or 'none'})",
            file=sys.stderr,
        )
        try:
            await asyncio.Event().wait()
        finally:
            await daemon.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("# serve: shut down", file=sys.stderr)
    return 0
