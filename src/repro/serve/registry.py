"""Named live sketches with epoch-sealed reads and warm restarts.

The serving tier's unit of state is a :class:`LiveSketch`: one summary
plus an **epoch** counter.  Reads are always answered from the sealed
state — ingested values accumulate in a pending buffer and only touch
the summary during :meth:`ServeRegistry.flush`, which applies the
buffered batches through the same kernel dispatch the offline harness
uses (:func:`repro.evaluation.harness.apply_batch`), bumps the epoch,
and (when a persist directory is configured) seals the new state to
disk as a checksummed snapshot envelope.

The epoch is what makes a sealed sketch's quantile vector cacheable:
between two flushes the summary is immutable, so any answer computed at
epoch ``e`` stays valid for exactly as long as the epoch does.  The
answer cache (:mod:`repro.serve.cache`) keys entries by
``(sketch, epoch, ...)`` and the service drops them on flush.

Warm restart: sealing writes ``<name>.rqss`` (a
:mod:`repro.core.snapshot` envelope) plus ``<name>.json`` (spec, epoch,
count) atomically; :meth:`ServeRegistry.recover` reloads every sealed
sketch, so a restarted daemon answers **identical** quantile vectors
for sealed epochs — the envelope CRC and the restored summary's
``validate()`` self-check guarantee it is the same state, not a
near-miss.
"""

from __future__ import annotations

import json
import os
import re
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

import numpy as np

from repro.core.base import QuantileSketch
from repro.core.errors import InvalidParameterError, ReproError
from repro.core.registry import get_algorithm, supports_merge
from repro.core.snapshot import envelope_info, restore, snapshot
from repro.evaluation.harness import apply_batch, build_sketch
from repro.obs import metrics as obs_metrics

#: Sketch names must be URL- and filesystem-safe.
_NAME_RE = re.compile(r"^[A-Za-z0-9_][A-Za-z0-9_.\-]{0,63}$")

#: Schema version of the sealed ``<name>.json`` metadata files.
META_SCHEMA = 1


class UnknownSketchError(ReproError, KeyError):
    """A query or ingest named a sketch the registry does not hold."""

    def __str__(self) -> str:  # KeyError quotes its repr; keep it readable
        return self.args[0] if self.args else ""


class DuplicateSketchError(ReproError, ValueError):
    """A create named a sketch the registry already holds."""


@dataclass(frozen=True)
class SketchSpec:
    """Declarative recipe for one served sketch.

    The spec is pinned at create time and persisted next to every sealed
    envelope, so a warm restart rebuilds exactly what was running (and a
    replica restoring a snapshot can verify it against its own spec).
    """

    algorithm: str
    eps: float
    universe_log2: Optional[int] = None
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        get_algorithm(self.algorithm)  # raises on unknown names
        if not (0.0 < self.eps < 1.0):
            raise InvalidParameterError(
                f"eps must be in (0, 1), got {self.eps!r}"
            )

    def build(self) -> QuantileSketch:
        """Instantiate the summary this spec describes."""
        return build_sketch(
            self.algorithm,
            self.eps,
            universe_log2=self.universe_log2,
            seed=self.seed,
        )

    @property
    def dtype(self) -> np.dtype:
        """Element dtype served values are coerced to (fixed-universe
        algorithms take integers, comparison-based ones floats)."""
        return np.dtype(np.int64 if self.universe_log2 is not None
                        else np.float64)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "algorithm": self.algorithm,
            "eps": self.eps,
            "universe_log2": self.universe_log2,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SketchSpec":
        try:
            return cls(
                algorithm=str(payload["algorithm"]),
                eps=float(payload["eps"]),
                universe_log2=(
                    None if payload.get("universe_log2") is None
                    else int(payload["universe_log2"])
                ),
                seed=(
                    None if payload.get("seed") is None
                    else int(payload["seed"])
                ),
            )
        except KeyError as exc:
            raise InvalidParameterError(
                f"sketch spec missing required field {exc.args[0]!r}"
            ) from None


class LiveSketch:
    """One served summary: sealed state, an epoch, and a pending buffer."""

    __slots__ = ("name", "spec", "sketch", "epoch", "pending",
                 "pending_elements", "ingested_total")

    def __init__(
        self,
        name: str,
        spec: SketchSpec,
        sketch: Optional[QuantileSketch] = None,
        epoch: int = 0,
    ) -> None:
        if not _NAME_RE.match(name):
            raise InvalidParameterError(
                f"sketch name {name!r} must match {_NAME_RE.pattern}"
            )
        self.name = name
        self.spec = spec
        self.sketch = sketch if sketch is not None else spec.build()
        self.epoch = epoch
        self.pending: List[np.ndarray] = []
        self.pending_elements = 0
        self.ingested_total = 0

    def buffer(self, values: Union[np.ndarray, List[Any]]) -> int:
        """Queue values for the next flush; returns how many were queued.

        Reads keep answering from the sealed state until :meth:`apply`
        runs — buffering never changes an answer.
        """
        batch = np.asarray(values, dtype=self.spec.dtype)
        if batch.ndim != 1:
            batch = batch.reshape(-1)
        if len(batch) == 0:
            return 0
        self.pending.append(batch)
        self.pending_elements += len(batch)
        self.ingested_total += len(batch)
        return len(batch)

    def apply(self) -> bool:
        """Apply every pending batch and advance the epoch.

        Returns True if the epoch advanced (False when nothing was
        pending).  Callers (the service) are responsible for dropping
        cache entries of the superseded epoch.
        """
        if not self.pending:
            return False
        start = time.perf_counter_ns()
        for batch in self.pending:
            apply_batch(self.sketch, batch)
        self.pending = []
        self.pending_elements = 0
        self.epoch += 1
        rec = obs_metrics.recorder()
        if rec.enabled:
            rec.inc("serve.flushes", 1)
            rec.set("serve.epoch", self.epoch, sketch=self.name)
            rec.observe(
                "serve.flush_ns", time.perf_counter_ns() - start,
                sketch=self.name,
            )
        return True

    def merge_in(self, other: QuantileSketch) -> None:
        """Fold an externally built summary (e.g. a parallel-engine
        result) into the sealed state and advance the epoch."""
        count = other.n
        self.sketch.merge(other)
        self.epoch += 1
        self.ingested_total += count
        rec = obs_metrics.recorder()
        if rec.enabled:
            rec.inc("serve.flushes", 1)
            rec.set("serve.epoch", self.epoch, sketch=self.name)

    def info(self) -> Dict[str, Any]:
        """JSON-ready description of this sketch's live state."""
        return {
            "name": self.name,
            "algorithm": self.spec.algorithm,
            "eps": self.spec.eps,
            "universe_log2": self.spec.universe_log2,
            "seed": self.spec.seed,
            "n": int(self.sketch.n),
            "epoch": self.epoch,
            "pending_elements": self.pending_elements,
            "size_words": int(self.sketch.size_words()),
            "size_bytes": int(self.sketch.size_bytes()),
            "mergeable": bool(getattr(self.sketch, "mergeable", False)),
        }


class ServeRegistry:
    """The daemon's map of named live sketches, with optional sealing.

    Args:
        persist_dir: directory sealed snapshots are written to on every
            flush (and recovered from on startup).  ``None`` serves
            purely in memory.
    """

    def __init__(
        self, persist_dir: Optional[Union[str, Path]] = None
    ) -> None:
        self._sketches: Dict[str, LiveSketch] = {}
        self.persist_dir = Path(persist_dir) if persist_dir else None
        if self.persist_dir is not None:
            self.persist_dir.mkdir(parents=True, exist_ok=True)

    # -- membership ----------------------------------------------------

    def __len__(self) -> int:
        return len(self._sketches)

    def __contains__(self, name: str) -> bool:
        return name in self._sketches

    def names(self) -> List[str]:
        return sorted(self._sketches)

    def infos(self) -> List[Dict[str, Any]]:
        return [self._sketches[name].info() for name in self.names()]

    def get(self, name: str) -> LiveSketch:
        try:
            return self._sketches[name]
        except KeyError:
            known = ", ".join(self.names()) or "(none)"
            raise UnknownSketchError(
                f"unknown sketch {name!r}; serving: {known}"
            ) from None

    def create(self, name: str, spec: SketchSpec) -> LiveSketch:
        if name in self._sketches:
            raise DuplicateSketchError(
                f"sketch {name!r} already exists (epoch "
                f"{self._sketches[name].epoch})"
            )
        entry = LiveSketch(name, spec)
        self._sketches[name] = entry
        self._update_gauge()
        return entry

    def publish(
        self,
        name: str,
        sketch: QuantileSketch,
        spec: SketchSpec,
        epoch: int = 1,
    ) -> LiveSketch:
        """Adopt an externally built summary under ``name``.

        The handoff point for offline pipelines: a harness run or a
        parallel-engine merge builds a summary, and ``publish`` puts it
        behind the query tier at a given epoch.
        """
        if name in self._sketches:
            raise DuplicateSketchError(f"sketch {name!r} already exists")
        entry = LiveSketch(name, spec, sketch=sketch, epoch=epoch)
        self._sketches[name] = entry
        self._update_gauge()
        if self.persist_dir is not None:
            self.seal(entry)
        return entry

    def drop(self, name: str) -> None:
        self.get(name)  # raises UnknownSketchError
        del self._sketches[name]
        self._update_gauge()
        if self.persist_dir is not None:
            for suffix in (".rqss", ".json"):
                path = self.persist_dir / f"{name}{suffix}"
                if path.exists():
                    path.unlink()

    def _update_gauge(self) -> None:
        rec = obs_metrics.recorder()
        if rec.enabled:
            rec.set("serve.sketches", len(self._sketches))

    # -- flushing and sealing ------------------------------------------

    def flush(self, name: str) -> bool:
        """Apply pending ingest for ``name``; seal if persistence is on.

        Returns True if the epoch advanced.
        """
        entry = self.get(name)
        advanced = entry.apply()
        if advanced and self.persist_dir is not None:
            self.seal(entry)
        return advanced

    def seal(self, entry: LiveSketch) -> Path:
        """Write ``entry``'s sealed state to the persist directory.

        Both files go through write-to-temp + fsync + atomic rename, the
        same discipline as the durability checkpoints: a kill at any
        instant leaves either the previous sealed epoch or the new one,
        never a torn file.
        """
        if self.persist_dir is None:
            raise InvalidParameterError(
                "registry has no persist_dir; sealing is disabled"
            )
        envelope = snapshot(entry.sketch)
        meta = {
            "schema": META_SCHEMA,
            "name": entry.name,
            "spec": entry.spec.to_dict(),
            "epoch": entry.epoch,
            "n": int(entry.sketch.n),
            "ingested_total": entry.ingested_total,
            "envelope_crc32": envelope_info(envelope).crc32,
        }
        path = self._write_atomic(f"{entry.name}.rqss", envelope)
        self._write_atomic(
            f"{entry.name}.json",
            json.dumps(meta, sort_keys=True).encode("utf-8"),
        )
        rec = obs_metrics.recorder()
        if rec.enabled:
            rec.inc("serve.snapshots", 1)
        return path

    def _write_atomic(self, filename: str, data: bytes) -> Path:
        final = self.persist_dir / filename  # type: ignore[operator]
        tmp = final.with_suffix(final.suffix + ".tmp")
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, final)
        return final

    def recover(self) -> List[str]:
        """Reload every sealed sketch from the persist directory.

        Returns the recovered names (sorted).  Each envelope's CRC is
        verified and the restored summary re-validated before it serves
        a single query — a damaged seal raises
        :class:`~repro.core.errors.CorruptSummaryError` instead of
        silently answering from corrupt state.
        """
        if self.persist_dir is None:
            return []
        recovered: List[str] = []
        for meta_path in sorted(self.persist_dir.glob("*.json")):
            meta = json.loads(meta_path.read_text())
            if meta.get("schema") != META_SCHEMA:
                raise InvalidParameterError(
                    f"{meta_path.name}: unsupported sealed-meta schema "
                    f"{meta.get('schema')!r}"
                )
            name = str(meta["name"])
            if name in self._sketches:
                continue
            envelope = (self.persist_dir / f"{name}.rqss").read_bytes()
            sketch = restore(envelope)  # CRC + validate()
            spec = SketchSpec.from_dict(meta["spec"])
            entry = LiveSketch(
                name, spec, sketch=sketch, epoch=int(meta["epoch"])
            )
            entry.ingested_total = int(meta.get("ingested_total", sketch.n))
            self._sketches[name] = entry
            recovered.append(name)
            rec = obs_metrics.recorder()
            if rec.enabled:
                rec.inc("serve.restores", 1)
                rec.set("serve.epoch", entry.epoch, sketch=name)
        self._update_gauge()
        return sorted(recovered)

    # -- replica fan-out -----------------------------------------------

    def export_envelope(self, name: str) -> Dict[str, Any]:
        """Snapshot ``name``'s sealed state for read-replica fan-out."""
        entry = self.get(name)
        envelope = snapshot(entry.sketch)
        info = envelope_info(envelope)
        return {
            "name": name,
            "epoch": entry.epoch,
            "n": int(entry.sketch.n),
            "tag": info.tag,
            "crc32": info.crc32,
            "envelope": envelope,
            "spec": entry.spec.to_dict(),
        }

    def restore_envelope(
        self,
        name: str,
        envelope: bytes,
        spec: SketchSpec,
        epoch: int,
    ) -> LiveSketch:
        """Install a summary shipped from a primary (replica catch-up).

        Replaces any existing entry under ``name`` — the shipped epoch
        supersedes local state, exactly like a recovery.  Merge support
        is not required: the replica serves the restored state as-is.
        """
        sketch = restore(envelope)
        entry = LiveSketch(name, spec, sketch=sketch, epoch=epoch)
        entry.ingested_total = int(sketch.n)
        self._sketches[name] = entry
        self._update_gauge()
        rec = obs_metrics.recorder()
        if rec.enabled:
            rec.inc("serve.restores", 1)
            rec.set("serve.epoch", epoch, sketch=name)
        if self.persist_dir is not None:
            self.seal(entry)
        return entry

    # -- capability checks ---------------------------------------------

    @staticmethod
    def mergeable(spec: SketchSpec) -> bool:
        return supports_merge(spec.algorithm)
