"""Deterministic asyncio load generator for the query tier.

Drives ``POST /v1/query`` over a handful of persistent keep-alive
connections, each sending a fixed number of requests drawn from a
seeded payload pool — so a run is exactly reproducible and the
queries-per-second figure in ``BENCH_serve.json`` means the same thing
on every box.  Each request carries a *batch* of quantile queries
(``queries_per_request`` sub-queries x ``phis_per_query`` phis), which
is how a one-core box clears 100k quantile answers per second: the
daemon's answer cache collapses repeated batches into ordered-dict
lookups, and HTTP overhead amortizes across the batch.

The generator measures client-side per-request latency with
``perf_counter_ns`` and returns raw stats; interpretation (targets,
gating) belongs to the caller (``benchmarks/bench_serve.py``).
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Any, Dict, List, Sequence

import numpy as np

from repro.core.errors import InvalidParameterError

#: Default distinct request payloads in the pool (cache working set).
DEFAULT_POOL = 64


def build_payload_pool(
    sketch_names: Sequence[str],
    pool_size: int = DEFAULT_POOL,
    queries_per_request: int = 4,
    phis_per_query: int = 64,
    seed: int = 0,
) -> List[bytes]:
    """Pre-serialize ``pool_size`` distinct ``/v1/query`` bodies.

    Phis are drawn from a seeded RNG and rounded to 4 decimals, giving a
    bounded universe of distinct cache keys: a realistic dashboard-style
    workload where most queries repeat.
    """
    if not sketch_names:
        raise InvalidParameterError("need at least one sketch name")
    if min(pool_size, queries_per_request, phis_per_query) < 1:
        raise InvalidParameterError(
            "pool_size, queries_per_request, phis_per_query must be >= 1"
        )
    rng = np.random.default_rng(seed)
    pool: List[bytes] = []
    for _ in range(pool_size):
        queries = []
        for _ in range(queries_per_request):
            name = sketch_names[int(rng.integers(len(sketch_names)))]
            phis = np.round(
                rng.uniform(0.001, 0.999, size=phis_per_query), 4
            )
            queries.append({"sketch": name, "phis": phis.tolist()})
        pool.append(json.dumps({"queries": queries}).encode("utf-8"))
    return pool


async def _drive_connection(
    host: str,
    port: int,
    payloads: Sequence[bytes],
    requests: int,
    offset: int,
    latencies_ns: List[int],
    errors: List[str],
) -> int:
    """One persistent connection issuing ``requests`` pooled payloads.

    Returns the number of successful requests.  Speaks just enough
    HTTP/1.1 to stay honest: full status-line + header parse, exact
    Content-Length body reads, keep-alive reuse.
    """
    reader, writer = await asyncio.open_connection(host, port)
    ok = 0
    try:
        for i in range(requests):
            body = payloads[(offset + i) % len(payloads)]
            head = (
                f"POST /v1/query HTTP/1.1\r\n"
                f"Host: {host}:{port}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: keep-alive\r\n"
                "\r\n"
            ).encode("latin-1")
            start = time.perf_counter_ns()
            writer.write(head + body)
            await writer.drain()
            status_line = await reader.readline()
            parts = status_line.decode("latin-1").split()
            if len(parts) < 2 or parts[1] != "200":
                errors.append(status_line.decode("latin-1").strip())
            length = 0
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                key, _sep, value = (
                    line.decode("latin-1").partition(":")
                )
                if key.strip().lower() == "content-length":
                    length = int(value)
            if length:
                await reader.readexactly(length)
            latencies_ns.append(time.perf_counter_ns() - start)
            if len(parts) >= 2 and parts[1] == "200":
                ok += 1
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover
            pass
    return ok


async def run_load(
    host: str,
    port: int,
    sketch_names: Sequence[str],
    total_requests: int = 2000,
    connections: int = 4,
    pool_size: int = DEFAULT_POOL,
    queries_per_request: int = 4,
    phis_per_query: int = 64,
    seed: int = 0,
) -> Dict[str, Any]:
    """Fire ``total_requests`` batched query requests at the daemon.

    Returns a stats dict: request/query counts, wall-clock seconds,
    ``qps`` (quantile queries per second — the acceptance figure),
    ``rps`` (HTTP requests per second), error samples, and client-side
    latency percentiles in nanoseconds.
    """
    if connections < 1 or total_requests < 1:
        raise InvalidParameterError(
            "connections and total_requests must be >= 1"
        )
    payloads = build_payload_pool(
        sketch_names,
        pool_size=pool_size,
        queries_per_request=queries_per_request,
        phis_per_query=phis_per_query,
        seed=seed,
    )
    per_conn = [total_requests // connections] * connections
    for i in range(total_requests % connections):
        per_conn[i] += 1
    latencies_ns: List[int] = []
    errors: List[str] = []
    start = time.perf_counter()
    results = await asyncio.gather(*[
        _drive_connection(
            host, port, payloads, per_conn[i],
            offset=i * 7919,  # a prime stride decorrelates pool order
            latencies_ns=latencies_ns, errors=errors,
        )
        for i in range(connections)
        if per_conn[i] > 0
    ])
    seconds = time.perf_counter() - start
    ok = int(sum(results))
    queries = ok * queries_per_request * phis_per_query
    ordered = sorted(latencies_ns)

    def pct(q: float) -> int:
        if not ordered:
            return 0
        return ordered[min(len(ordered) - 1, int(q * len(ordered)))]

    return {
        "requests": total_requests,
        "requests_ok": ok,
        "queries": queries,
        "connections": connections,
        "pool_size": pool_size,
        "queries_per_request": queries_per_request * phis_per_query,
        "seconds": seconds,
        "qps": queries / seconds if seconds > 0 else 0.0,
        "rps": ok / seconds if seconds > 0 else 0.0,
        "errors": errors[:10],
        "error_count": len(errors),
        "client_latency_ns": {
            "p50": pct(0.50), "p90": pct(0.90), "p99": pct(0.99),
        },
    }


def run_load_sync(*args: Any, **kwargs: Any) -> Dict[str, Any]:
    """:func:`run_load` from synchronous code (owns a private loop)."""
    return asyncio.run(run_load(*args, **kwargs))
