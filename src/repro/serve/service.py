"""The query-tier coordinator: registry + cache + coalesced reads.

:class:`QuantileService` is the daemon's brain, HTTP-free so tests and
in-process embedding drive it directly.  All methods run on one asyncio
event loop.  The read path::

    entry = registry.get(name)           # current epoch e
    key = (name, e, kind, params)
    value, status = await cache.get_or_compute(key, compute)

``compute`` itself contains **no await points** around the sketch
query, so on the real daemon a flush can never interleave with a
computation.  The cache still defends in depth: if a computation *is*
suspended across a flush (tests do this deliberately), the flush marks
it stale and every reader retries against the new epoch — see
:mod:`repro.serve.cache`.

Writes: ``ingest`` buffers values (reads keep answering from the sealed
epoch), auto-flushing past ``flush_threshold`` pending elements;
``flush`` applies the buffer through the offline batch kernels, bumps
the epoch, seals to disk when persistence is on, and invalidates the
cache — in that order, atomically with respect to the loop.  Bulk
ingest can be routed through the multi-core sharded engine
(``workers=K``) for mergeable algorithms: the engine builds a summary
of the batch in parallel and the service merges it into the sealed
state as one epoch step.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.base import validate_phi
from repro.core.errors import (
    EmptySummaryError,
    InvalidParameterError,
    UnmergeableSketchError,
)
from repro.core.registry import merge_shares_seed, supports_merge
from repro.obs import metrics as obs_metrics
from repro.serve.cache import STALE, AnswerCache, CacheKey
from repro.serve.registry import LiveSketch, ServeRegistry, SketchSpec

#: Epoch-advance retries before a read falls back to an uncached
#: computation (each retry means a flush landed mid-read).
_MAX_EPOCH_RETRIES = 4

#: Auto-flush once this many elements are pending (0 disables).
DEFAULT_FLUSH_THRESHOLD = 65536


class QuantileService:
    """Registry + answer cache behind an async query surface."""

    def __init__(
        self,
        registry: Optional[ServeRegistry] = None,
        cache: Optional[AnswerCache] = None,
        persist_dir: Optional[str] = None,
        flush_threshold: int = DEFAULT_FLUSH_THRESHOLD,
    ) -> None:
        if registry is not None and persist_dir is not None:
            raise InvalidParameterError(
                "pass persist_dir to the registry or to the service, "
                "not both"
            )
        if flush_threshold < 0:
            raise InvalidParameterError(
                f"flush_threshold must be >= 0, got {flush_threshold!r}"
            )
        self.registry = (
            registry if registry is not None
            else ServeRegistry(persist_dir=persist_dir)
        )
        self.cache = cache if cache is not None else AnswerCache()
        self.flush_threshold = flush_threshold
        self._started_ns = time.perf_counter_ns()

    # -- admin ---------------------------------------------------------

    def recover(self) -> List[str]:
        """Warm-restart: reload every sealed sketch (see registry)."""
        return self.registry.recover()

    async def create(self, name: str, spec: SketchSpec) -> Dict[str, Any]:
        entry = self.registry.create(name, spec)
        return entry.info()

    async def drop(self, name: str) -> None:
        self.registry.drop(name)
        self.cache.invalidate(name)

    def infos(self) -> List[Dict[str, Any]]:
        return self.registry.infos()

    def info(self, name: str) -> Dict[str, Any]:
        return self.registry.get(name).info()

    # -- writes --------------------------------------------------------

    async def ingest(
        self,
        name: str,
        values: Union[np.ndarray, List[Any]],
        flush: bool = False,
        workers: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Buffer ``values`` for ``name``; optionally flush immediately.

        ``workers=K`` routes the batch through the sharded parallel
        engine instead of the buffer: K processes sketch the batch and
        the merged result folds into the sealed state as one epoch
        step.  Worth it for bulk loads; see docs/serving.md.
        """
        entry = self.registry.get(name)
        if workers is not None:
            accepted = await self._ingest_parallel(entry, values, workers)
            self.cache.invalidate(name)
            return {
                "name": name,
                "accepted": accepted,
                "pending_elements": entry.pending_elements,
                "epoch": entry.epoch,
                "flushed": True,
            }
        accepted = entry.buffer(values)
        rec = obs_metrics.recorder()
        if rec.enabled and accepted:
            rec.inc("serve.ingested", accepted)
        flushed = False
        if flush or (
            self.flush_threshold
            and entry.pending_elements >= self.flush_threshold
        ):
            flushed = await self.flush(name)
        return {
            "name": name,
            "accepted": accepted,
            "pending_elements": entry.pending_elements,
            "epoch": entry.epoch,
            "flushed": flushed,
        }

    async def _ingest_parallel(
        self, entry: LiveSketch, values: Union[np.ndarray, List[Any]],
        workers: int,
    ) -> int:
        from repro.parallel.engine import parallel_feed
        from repro.parallel.plan import ShardPlan

        spec = entry.spec
        if not supports_merge(spec.algorithm):
            raise UnmergeableSketchError(
                f"{spec.algorithm} cannot take the parallel ingest "
                "route (no merge support); ingest serially"
            )
        if merge_shares_seed(spec.algorithm):
            raise InvalidParameterError(
                f"{spec.algorithm} shards must share the live sketch's "
                "hash seed; the parallel ingest route would build an "
                "incompatible summary — ingest serially"
            )
        if workers < 1:
            raise InvalidParameterError(
                f"workers must be >= 1, got {workers!r}"
            )
        batch = np.asarray(values, dtype=spec.dtype).reshape(-1)
        if len(batch) == 0:
            return 0
        plan = ShardPlan(
            seed=spec.seed if spec.seed is not None else 0,
            shards=workers,
        )
        # The engine forks workers and blocks on their reply queue; run
        # it in the default executor so the loop keeps serving reads
        # (REP008 — this was the one call that stalled every in-flight
        # request for the duration of a bulk load).
        loop = asyncio.get_running_loop()
        shard_summary, _seconds = await loop.run_in_executor(
            None,
            lambda: parallel_feed(
                spec.algorithm, batch, spec.eps, plan,
                universe_log2=spec.universe_log2,
            ),
        )
        # Reads ran while the engine did; if the sketch was dropped (or
        # dropped and re-created) across the await, discard the batch
        # rather than mutate a zombie entry.
        if self.registry.get(entry.name) is not entry:
            raise InvalidParameterError(
                f"sketch {entry.name!r} was replaced during parallel "
                "ingest; the batch was discarded — retry"
            )
        entry.merge_in(shard_summary)
        rec = obs_metrics.recorder()
        if rec.enabled:
            rec.inc("serve.ingested", len(batch))
        if self.registry.persist_dir is not None:
            self.registry.seal(entry)
        return len(batch)

    async def flush(self, name: str) -> bool:
        """Apply pending ingest, advance the epoch, drop stale answers.

        Epoch bump and cache invalidation happen with no await point in
        between: no reader can observe the new epoch with the old
        cache, or vice versa.
        """
        advanced = self.registry.flush(name)
        if advanced:
            self.cache.invalidate(name)
        return advanced

    async def flush_all(self) -> List[str]:
        flushed = []
        for name in self.registry.names():
            if await self.flush(name):
                flushed.append(name)
        return flushed

    # -- reads ---------------------------------------------------------

    async def quantiles(
        self, name: str, phis: Sequence[float]
    ) -> Dict[str, Any]:
        """Answer ``phis`` from the sealed epoch (cached + coalesced)."""
        params = tuple(validate_phi(phi) for phi in phis)
        if not params:
            raise InvalidParameterError("phis must be non-empty")
        values, epoch, count, status = await self._read(name, "q", params)
        return {
            "name": name,
            "epoch": epoch,
            "n": count,
            "cache": status,
            "quantiles": [
                {"phi": phi, "value": value}
                for phi, value in zip(params, values)
            ],
        }

    async def ranks(
        self, name: str, targets: Sequence[float]
    ) -> Dict[str, Any]:
        """Fractional ranks of ``targets`` under the sealed epoch."""
        if not targets:
            raise InvalidParameterError("values must be non-empty")
        params = tuple(float(value) for value in targets)
        values, epoch, count, status = await self._read(name, "r", params)
        return {
            "name": name,
            "epoch": epoch,
            "n": count,
            "cache": status,
            "ranks": [
                {"value": target, "rank": rank}
                for target, rank in zip(params, values)
            ],
        }

    async def cdf(self, name: str, points: int) -> Dict[str, Any]:
        """A ``points``-step staircase CDF of the sealed epoch."""
        if points < 1:
            raise InvalidParameterError(
                f"points must be >= 1, got {points!r}"
            )
        values, epoch, count, status = await self._read(
            name, "c", (int(points),)
        )
        return {
            "name": name,
            "epoch": epoch,
            "n": count,
            "cache": status,
            "points": values,
        }

    async def query_batch(
        self, queries: Sequence[Dict[str, Any]]
    ) -> List[Dict[str, Any]]:
        """Fan a batch of quantile queries out through the cache.

        Each query is ``{"sketch": name, "phis": [...]}``; identical
        (sketch, phi-vector) pairs inside one batch coalesce to a
        single computation like concurrent requests do.
        """
        results: List[Dict[str, Any]] = []
        for query in queries:
            if "sketch" not in query:
                raise InvalidParameterError(
                    "each query needs a 'sketch' field"
                )
            results.append(
                await self.quantiles(
                    str(query["sketch"]), query.get("phis", (0.5,))
                )
            )
        return results

    async def _read(
        self, name: str, kind: str, params: Tuple[Any, ...]
    ) -> Tuple[List[Any], int, int, str]:
        """The cached read path; returns (values, epoch, n, status)."""
        rec = obs_metrics.recorder()
        start = time.perf_counter_ns()
        try:
            for _attempt in range(_MAX_EPOCH_RETRIES):
                entry = self.registry.get(name)
                self._check_readable(entry)
                epoch = entry.epoch
                count = int(entry.sketch.n)  # the sealed epoch's n
                key: CacheKey = (name, epoch, kind, params)
                value, status = await self.cache.get_or_compute(
                    key, lambda: self._compute(entry, kind, params)
                )
                if value is not STALE:
                    return list(value), epoch, count, status
            # Flushes keep landing mid-read; answer uncached from the
            # now-current epoch rather than looping forever.
            entry = self.registry.get(name)
            self._check_readable(entry)
            value = await self._compute(entry, kind, params)
            return (
                list(value), entry.epoch, int(entry.sketch.n), "uncached"
            )
        finally:
            if rec.enabled:
                rec.inc("serve.queries", len(params))
                rec.summary("latency.serve.query_ns").observe(
                    time.perf_counter_ns() - start
                )

    @staticmethod
    def _check_readable(entry: LiveSketch) -> None:
        if entry.sketch.n == 0:
            raise EmptySummaryError(
                f"sketch {entry.name!r} is empty at epoch {entry.epoch} "
                "(ingest and flush before querying)"
            )

    async def _compute(
        self, entry: LiveSketch, kind: str, params: Tuple[Any, ...]
    ) -> List[Any]:
        """Compute one answer vector; the patch point for race tests.

        Deliberately free of await points around the sketch query: the
        event loop cannot run a flush while the vector is being built.
        """
        sketch = entry.sketch
        if kind == "q":
            return [_plain(v) for v in sketch.query_batch(list(params))]
        if kind == "r":
            count = max(1, sketch.n)
            return [float(sketch.rank(v)) / count for v in params]
        if kind == "c":
            return [_plain(v) for v in sketch.cdf_points(params[0])]
        raise InvalidParameterError(f"unknown query kind {kind!r}")

    # -- introspection -------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """JSON-ready service statistics (the /v1/stats payload)."""
        rec = obs_metrics.recorder()

        def counter(metric: str) -> int:
            # Sum across label sets (serve.requests is per-endpoint).
            if not isinstance(rec, obs_metrics.MetricsRegistry):
                return 0
            return int(sum(
                inst.value for inst in rec.instruments()
                if inst.name == metric and inst.kind == "counter"
            ))

        payload: Dict[str, Any] = {
            "uptime_s": (
                (time.perf_counter_ns() - self._started_ns) / 1e9
            ),
            "sketches": self.infos(),
            "cache": dict(self.cache.stats()),
            "collecting": bool(rec.enabled),
        }
        payload["cache"].update(
            hits=counter("serve.cache.hits"),
            misses=counter("serve.cache.misses"),
            coalesced=counter("serve.cache.coalesced"),
            evictions=counter("serve.cache.evictions"),
            invalidations=counter("serve.cache.invalidations"),
            stale_retries=counter("serve.cache.stale_retries"),
        )
        payload["counters"] = {
            "requests": counter("serve.requests"),
            "queries": counter("serve.queries"),
            "ingested": counter("serve.ingested"),
            "flushes": counter("serve.flushes"),
            "errors": counter("serve.errors"),
        }
        if rec.enabled:
            summary = rec.get("latency.serve.request_ns")
            if summary is not None and summary.count:
                payload["request_latency_ns"] = {
                    "count": summary.count,
                    "p50": summary.quantile(0.5),
                    "p99": summary.quantile(0.99),
                }
        return payload


def _plain(value: Any) -> Any:
    """numpy scalar -> plain Python (JSON encoders choke otherwise)."""
    return value.item() if hasattr(value, "item") else value
