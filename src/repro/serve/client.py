"""A small synchronous client for the quantile daemon.

Wraps one persistent keep-alive :class:`http.client.HTTPConnection`
per :class:`ServeClient`, so a sequence of calls pays connection setup
once.  Every method maps 1:1 onto a daemon endpoint and returns the
decoded JSON payload; non-2xx responses raise :class:`ServeClientError`
carrying the daemon's error message and status code.

>>> from repro.serve.daemon import serve_in_thread
>>> from repro.serve.client import ServeClient
>>> with serve_in_thread() as handle:
...     with ServeClient(handle.url()) as client:
...         _ = client.create("doc", algorithm="gk_array", eps=0.01)
...         _ = client.ingest("doc", list(range(1, 101)), flush=True)
...         client.quantile("doc", [0.5])["values"]
[50]
"""

from __future__ import annotations

import http.client
import json
from typing import Any, Dict, List, Optional, Sequence
from urllib.parse import quote, urlparse

from repro.core.errors import ReproError

#: Per-request socket timeout (seconds).
DEFAULT_TIMEOUT = 30.0


class ServeClientError(ReproError):
    """The daemon answered with a non-2xx status."""

    def __init__(self, status: int, message: str, path: str) -> None:
        super().__init__(f"{status} from {path}: {message}")
        self.status = status
        self.path = path


class ServeClient:
    """Talk to a :class:`~repro.serve.daemon.QuantileDaemon`.

    Args:
        base_url: daemon root, e.g. ``"http://127.0.0.1:8123"`` (what
            :meth:`DaemonHandle.url` returns).
        timeout: socket timeout in seconds for each request.
    """

    def __init__(
        self, base_url: str, timeout: float = DEFAULT_TIMEOUT
    ) -> None:
        parsed = urlparse(base_url)
        if parsed.scheme not in ("http", ""):
            raise ReproError(
                f"ServeClient only speaks http, got {base_url!r}"
            )
        host = parsed.hostname or "127.0.0.1"
        port = parsed.port or 80
        self._conn = http.client.HTTPConnection(
            host, port, timeout=timeout
        )

    # -- transport ------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
        raw: bool = False,
    ) -> Any:
        body = None
        headers = {"Connection": "keep-alive"}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        try:
            self._conn.request(method, path, body=body, headers=headers)
            response = self._conn.getresponse()
            data = response.read()
        except (http.client.HTTPException, ConnectionError, OSError):
            # One reconnect: the daemon may have closed an idle
            # keep-alive connection between calls.
            self._conn.close()
            self._conn.request(method, path, body=body, headers=headers)
            response = self._conn.getresponse()
            data = response.read()
        if not (200 <= response.status < 300):
            message = data.decode("utf-8", "replace")
            try:
                message = json.loads(message).get("error", message)
            except (json.JSONDecodeError, AttributeError):
                pass
            raise ServeClientError(response.status, message, path)
        if raw:
            return data.decode("utf-8")
        return json.loads(data.decode("utf-8")) if data else None

    # -- sketch lifecycle ----------------------------------------------

    def create(
        self,
        name: str,
        algorithm: str,
        eps: float,
        universe_log2: Optional[int] = None,
        seed: Optional[int] = None,
    ) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "name": name, "algorithm": algorithm, "eps": eps,
        }
        if universe_log2 is not None:
            payload["universe_log2"] = universe_log2
        if seed is not None:
            payload["seed"] = seed
        return self._request("POST", "/v1/sketches", payload)

    def sketches(self) -> List[Dict[str, Any]]:
        return self._request("GET", "/v1/sketches")["sketches"]

    def info(self, name: str) -> Dict[str, Any]:
        return self._request("GET", f"/v1/sketches/{quote(name)}")

    def drop(self, name: str) -> Dict[str, Any]:
        return self._request("DELETE", f"/v1/sketches/{quote(name)}")

    # -- ingest ---------------------------------------------------------

    def ingest(
        self,
        name: str,
        values: Sequence[float],
        flush: bool = False,
        workers: Optional[int] = None,
    ) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "values": list(values), "flush": flush,
        }
        if workers is not None:
            payload["workers"] = workers
        return self._request(
            "POST", f"/v1/sketches/{quote(name)}/ingest", payload
        )

    def flush(self, name: str) -> Dict[str, Any]:
        return self._request(
            "POST", f"/v1/sketches/{quote(name)}/flush", {}
        )

    # -- queries --------------------------------------------------------

    def quantile(
        self, name: str, phis: Sequence[float]
    ) -> Dict[str, Any]:
        joined = ",".join(repr(float(phi)) for phi in phis)
        return self._request(
            "GET", f"/v1/sketches/{quote(name)}/quantile?phi={joined}"
        )

    def rank(self, name: str, values: Sequence[float]) -> Dict[str, Any]:
        joined = ",".join(repr(float(v)) for v in values)
        return self._request(
            "GET", f"/v1/sketches/{quote(name)}/rank?value={joined}"
        )

    def cdf(self, name: str, points: int = 10) -> Dict[str, Any]:
        return self._request(
            "GET", f"/v1/sketches/{quote(name)}/cdf?points={points}"
        )

    def query(
        self, queries: Sequence[Dict[str, Any]]
    ) -> List[Dict[str, Any]]:
        return self._request(
            "POST", "/v1/query", {"queries": list(queries)}
        )["results"]

    # -- replication ----------------------------------------------------

    def snapshot(self, name: str) -> Dict[str, Any]:
        return self._request(
            "GET", f"/v1/sketches/{quote(name)}/snapshot"
        )

    def restore(
        self, name: str, exported: Dict[str, Any]
    ) -> Dict[str, Any]:
        return self._request(
            "POST", f"/v1/sketches/{quote(name)}/restore", exported
        )

    # -- observability --------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/stats")

    def healthz(self) -> Dict[str, Any]:
        return self._request("GET", "/healthz")

    def metrics_text(self) -> str:
        return self._request("GET", "/metrics", raw=True)

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()
