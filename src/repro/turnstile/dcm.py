"""DCM — Dyadic Count-Min, the turnstile quantile algorithm of Cormode
and Muthukrishnan [7].

One Count-Min sketch per dyadic level.  Following the paper's tuned
settings (Section 4.3.1): ``d = 7`` rows and ``w = (1/eps) * log2(u)``
columns — the extra ``log2(u)`` factor splits the error budget across the
levels whose estimates a rank query sums, since Count-Min errors are
one-sided and add up rather than cancel.  Total space
``O((1/eps) log^2 u ...)``, the pre-DCS record (Table 1).
"""

from __future__ import annotations

import math
from typing import Optional

from repro.core.registry import register
from repro.core.snapshot import snapshottable
from repro.sketches.countmin import CountMinSketch
from repro.turnstile.dyadic import DyadicQuantiles


@snapshottable("dcm")
@register("dcm")
class DyadicCountMin(DyadicQuantiles):
    """Dyadic Count-Min turnstile quantile sketch.

    Args:
        eps: target rank error.
        universe_log2: log2 of the universe size (at most 32).
        seed: hash randomness.
        width: override the per-level sketch width ``w`` (tuning knob for
            the Table 3/4 style experiments).
        depth: rows per sketch; the paper tunes this to 7.
        exact_cutoff: see :class:`DyadicQuantiles`.
    """

    name = "DCM"

    def __init__(
        self,
        eps: float,
        universe_log2: int,
        seed: Optional[int] = None,
        width: Optional[int] = None,
        depth: int = 7,
        exact_cutoff: Optional[int] = None,
    ) -> None:
        self.depth = depth
        self._width = width if width is not None else max(
            2, math.ceil(universe_log2 / eps)
        )
        super().__init__(eps, universe_log2, seed, exact_cutoff)

    @property
    def width(self) -> int:
        """Per-level sketch width ``w``."""
        return self._width

    def _sketch_words(self) -> int:
        return self._width * self.depth

    def _make_estimator(self, level: int):
        # Declaring the level's reduced universe arms the hash-plane
        # fast path for levels small enough to materialize.
        return CountMinSketch(
            self._width,
            self.depth,
            rng=self._rng,
            universe=1 << (self.universe_log2 - level),
        )
