"""DCS — Dyadic Count-Sketch, the paper's new turnstile algorithm
(Section 3.1).

One Count-Sketch per dyadic level.  Because each level's estimate is
*unbiased*, the errors of the up-to-``log2(u)`` estimates a rank query
sums partially cancel, so the error grows only like ``sqrt(log u)``
instead of ``log u`` — the paper's new analysis, and the reason DCS needs
roughly a tenth of DCM's space at equal accuracy (Fig. 10c).

Tuned settings from Section 4.3.1: ``d = 7`` rows and
``w = sqrt(log2(u)) / eps`` columns per level.

``post_processed()`` returns an OLS-corrected snapshot (Section 3.2),
implemented in :mod:`repro.turnstile.postprocess`.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.core.registry import register
from repro.core.snapshot import snapshottable
from repro.sketches.countsketch import CountSketch
from repro.turnstile.dyadic import DyadicQuantiles


@snapshottable("dcs")
@register("dcs")
class DyadicCountSketch(DyadicQuantiles):
    """Dyadic Count-Sketch turnstile quantile sketch.

    Args:
        eps: target rank error.
        universe_log2: log2 of the universe size (at most 32).
        seed: hash randomness.
        width: override the per-level sketch width ``w`` (tuning knob for
            the Table 3/4 experiments).
        depth: rows per sketch; the paper tunes this to 7.
        exact_cutoff: see :class:`DyadicQuantiles`.
    """

    name = "DCS"

    def __init__(
        self,
        eps: float,
        universe_log2: int,
        seed: Optional[int] = None,
        width: Optional[int] = None,
        depth: int = 7,
        exact_cutoff: Optional[int] = None,
    ) -> None:
        self.depth = depth
        self._width = width if width is not None else max(
            2, math.ceil(math.sqrt(universe_log2) / eps)
        )
        super().__init__(eps, universe_log2, seed, exact_cutoff)

    @property
    def width(self) -> int:
        """Per-level sketch width ``w``."""
        return self._width

    def _sketch_words(self) -> int:
        return self._width * self.depth

    def _make_estimator(self, level: int):
        # Declaring the level's reduced universe arms the hash-plane
        # fast path for levels small enough to materialize.
        return CountSketch(
            self._width,
            self.depth,
            rng=self._rng,
            universe=1 << (self.universe_log2 - level),
        )

    def post_processed(self, eta: float = 0.1):
        """An OLS-corrected snapshot of the current state (Section 3.2).

        Args:
            eta: truncation threshold multiplier — nodes estimated below
                ``eta * eps * n`` are not expanded (Fig. 9 tunes this;
                0.1 is the paper's sweet spot).
        """
        from repro.turnstile.postprocess import PostProcessedSnapshot

        return PostProcessedSnapshot(self, eta=eta)
