"""The dyadic structure underlying every turnstile quantile algorithm.

Section 3: impose ``log2(u)`` levels over the universe ``[0, u)``.  At
level ``i`` the universe is partitioned into intervals of length ``2**i``;
an element ``x`` maps to the interval (cell) ``x >> i``.  Each level owns
a frequency estimator over its reduced universe ``[0, u / 2**i)`` — a
sketch, or exact counters once the reduced universe is smaller than the
sketch would be ("we should maintain the frequencies exactly").

* ``rank(x)`` decomposes ``[0, x)`` into at most one dyadic interval per
  level — for every set bit ``i`` of ``x``, the level-``i`` cell
  ``(x >> i) ^ 1`` — and sums the estimated interval counts.
* ``query(phi)`` binary-searches ``[0, u)`` for the largest element whose
  rank is below ``phi * n``.

Subclasses (DCM, DCS, RSS) choose the estimator; everything else —
update/delete fan-out, rank decomposition, quantile search, space
accounting — lives here.
"""

from __future__ import annotations

import math
import time
from typing import List, Optional, Sequence

import numpy as np

from repro.core.base import (
    TurnstileSketch,
    validate_eps,
    validate_phi,
    validate_universe_log2,
)
from repro.core.errors import (
    CorruptSummaryError,
    MergeError,
    UniverseOverflowError,
)
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span
from repro.sketches import hashplan
from repro.sketches.exact_counter import ExactCounter
from repro.sketches.hashing import make_rng


class DyadicQuantiles(TurnstileSketch):
    """Base class: dyadic hierarchy of frequency estimators.

    Args:
        eps: target rank error.
        universe_log2: log2 of the universe size (elements are ints in
            ``[0, 2**universe_log2)``; at most 32).
        seed: randomness for the level sketches.
        exact_cutoff: keep exact counters at a level whenever its reduced
            universe has at most this many cells.  ``None`` (default)
            derives it from the per-level sketch footprint; ``0`` disables
            exact levels entirely except the implicit root (ablation).
    """

    name = "Dyadic"
    deterministic = False
    mergeable = True
    #: Counter addition is linear only when both sides evaluate identical
    #: level hashes — shard sketches of a dyadic algorithm must be built
    #: from one shared seed (the hash coefficients are verified at merge).
    merge_shares_seed = True

    def __init__(
        self,
        eps: float,
        universe_log2: int,
        seed: Optional[int] = None,
        exact_cutoff: Optional[int] = None,
    ) -> None:
        self.eps = validate_eps(eps)
        self.universe_log2 = validate_universe_log2(universe_log2)
        if universe_log2 > 32:
            raise UniverseOverflowError(
                "dyadic sketches support universes up to 2**32"
            )
        self.universe = 1 << universe_log2
        self._rng = make_rng(seed)
        self._n = 0
        if exact_cutoff is None:
            exact_cutoff = self._sketch_words()
        self.exact_cutoff = exact_cutoff
        self._levels = []
        for level in range(universe_log2):
            cells = 1 << (universe_log2 - level)
            if cells <= self.exact_cutoff:
                self._levels.append(ExactCounter(cells))
            else:
                self._levels.append(self._make_estimator(level))

    # -- subclass hooks -------------------------------------------------

    def _sketch_words(self) -> int:
        """Approximate per-level sketch footprint (sets exact_cutoff)."""
        raise NotImplementedError

    def _make_estimator(self, level: int):
        """Build the frequency estimator for one (sketched) level."""
        raise NotImplementedError

    # -- updates ---------------------------------------------------------

    @property
    def n(self) -> int:
        return self._n

    def _check(self, value: int) -> int:
        value = int(value)
        if not (0 <= value < self.universe):
            raise UniverseOverflowError(
                f"value {value!r} outside universe [0, {self.universe})"
            )
        return value

    def update(self, value) -> None:
        value = self._check(value)
        self._n += 1
        for level, est in enumerate(self._levels):
            est.update(value >> level, 1)

    def delete(self, value) -> None:
        value = self._check(value)
        self._n -= 1
        for level, est in enumerate(self._levels):
            est.update(value >> level, -1)

    def update_batch(self, values: Sequence[int], deltas=1) -> None:
        """Vectorized bulk update (``deltas`` is +/-1 scalar or array).

        Large batches take the counts-fold fast path: the batch is
        aggregated once into ``(unique cells, summed deltas)`` at level
        0, then coarsened per level with one ``reduceat`` — the level-
        ``i+1`` key multiset is a pure function of the level-``i``
        aggregate — so each estimator sees at most ``min(batch,
        universe >> level)`` rows instead of the full batch, and the
        estimators' own plane gathers shrink accordingly.  Integer
        addition commutes, so the resulting state is bit-identical to
        the per-level fan-out.
        """
        keys = np.asarray(values, dtype=np.int64)
        if keys.size == 0:
            return
        if keys.min() < 0 or keys.max() >= self.universe:
            raise UniverseOverflowError(
                f"values outside universe [0, {self.universe})"
            )
        deltas_arr = np.broadcast_to(
            np.asarray(deltas, dtype=np.int64), keys.shape
        )
        self._n += int(deltas_arr.sum())
        keys = keys.astype(np.uint64)
        if hashplan.enabled() and keys.size >= hashplan.FOLD_MIN_BATCH:
            cells, sums = hashplan.aggregate_batch(keys, deltas_arr)
            for level, est in enumerate(self._levels):
                if level:
                    cells, sums = hashplan.fold_level(cells, sums)
                est.update_batch(cells, sums)
        else:
            for level, est in enumerate(self._levels):
                est.update_batch(keys >> np.uint64(level), deltas_arr)

    def extend(self, values) -> None:
        self.update_batch(np.fromiter(values, dtype=np.int64))

    # -- queries ----------------------------------------------------------

    def level_estimate(self, level: int, cell: int) -> float:
        """Estimated number of elements in the level-``level`` cell."""
        return float(self._levels[level].estimate(cell))

    def rank(self, value) -> float:
        """Estimated number of elements smaller than ``value``.

        ``value`` may be ``universe`` (one past the top), in which case the
        answer is ``n`` exactly.
        """
        value = int(value)
        if value <= 0:
            return 0.0
        if value >= self.universe:
            return float(self._n)
        total = 0.0
        for level in range(self.universe_log2):
            if (value >> level) & 1:
                total += float(
                    self._levels[level].estimate((value >> level) ^ 1)
                )
        return total

    def rank_batch(self, values) -> np.ndarray:
        """Vectorized :meth:`rank` for many values at once.

        One batched estimator call per level covers every value, instead
        of one scalar estimate per (value, set bit) pair.  Values may
        include ``universe`` (one past the top), which ranks ``n``.
        """
        vals = np.asarray(values, dtype=np.int64)
        out = np.zeros(len(vals), dtype=np.float64)
        if not len(vals):
            return out
        out[vals >= self.universe] = float(self._n)
        inside = (vals > 0) & (vals < self.universe)
        if not inside.any():
            return out
        v = vals[inside]
        total = np.zeros(len(v), dtype=np.float64)
        for level in range(self.universe_log2):
            shifted = v >> level
            has_bit = (shifted & 1).astype(bool)
            if has_bit.any():
                cells = shifted[has_bit] ^ 1
                total[has_bit] += np.asarray(
                    self._levels[level].estimate_batch(cells),
                    dtype=np.float64,
                )
        out[inside] = total
        return out

    def query(self, phi: float) -> int:
        """Approximate ``phi``-quantile via binary search on the rank."""
        validate_phi(phi)
        self._require_nonempty()
        target = max(1, math.ceil(phi * self._n))
        start_ns = time.perf_counter_ns()
        rank_evals = 0
        with span("turnstile.query", algo=self.name, phi=phi):
            lo, hi = 0, self.universe - 1
            while lo < hi:
                mid = (lo + hi) // 2
                # rank(mid + 1) estimates the count of elements <= mid.
                rank_evals += 1
                if self.rank(mid + 1) < target:
                    lo = mid + 1
                else:
                    hi = mid
        rec = obs_metrics.recorder()
        if rec.enabled:
            rec.inc("sketches.rank_evals", rank_evals, sketch=self.name)
            rec.observe(
                "sketches.query_ns",
                time.perf_counter_ns() - start_ns,
                sketch=self.name,
            )
        return lo

    def query_batch(self, phis) -> List[int]:
        """All quantile searches walk the binary-search levels together.

        Every iteration halves every still-active query's interval with a
        single :meth:`rank_batch` call, so the ``log2(u)`` level walk —
        and its per-level estimator overhead — is shared across ``phis``.
        Answers equal looping :meth:`query` (same rank estimates, same
        midpoints per query).
        """
        targets_f = [validate_phi(phi) * self._n for phi in phis]
        self._require_nonempty()
        if not targets_f:
            return []
        targets = np.maximum(
            1, np.ceil(np.asarray(targets_f))
        ).astype(np.int64)
        start_ns = time.perf_counter_ns()
        rank_evals = 0
        with span("turnstile.query", algo=self.name, batch=len(targets)):
            lo = np.zeros(len(targets), dtype=np.int64)
            hi = np.full(len(targets), self.universe - 1, dtype=np.int64)
            active = lo < hi
            while active.any():
                mid = (lo[active] + hi[active]) >> 1
                rank_evals += int(active.sum())
                ranks = self.rank_batch(mid + 1)
                go_up = ranks < targets[active]
                lo[active] = np.where(go_up, mid + 1, lo[active])
                hi[active] = np.where(go_up, hi[active], mid)
                active = lo < hi
        rec = obs_metrics.recorder()
        if rec.enabled:
            rec.inc("sketches.rank_evals", rank_evals, sketch=self.name)
            rec.observe(
                "sketches.query_ns",
                time.perf_counter_ns() - start_ns,
                sketch=self.name,
            )
        return lo.tolist()

    # -- merging ----------------------------------------------------------

    def merge(self, other) -> None:
        """Add another dyadic structure into this one, level by level.

        Every level estimator is linear (exact counters and hash-sketch
        tables alike), so the merged structure summarizes the combined
        update stream exactly as if it had ingested both.  Requires the
        same algorithm, ``eps``, universe, cutoff, and — for sketched
        levels — identical hash functions, i.e. both sketches built from
        the same seed (coefficients are verified, not trusted).

        Raises:
            MergeError: on any parameter or hash-function mismatch.
        """
        if type(other) is not type(self):
            raise MergeError(
                f"cannot merge {type(other).__name__} into {self.name}"
            )
        if self.eps != other.eps:
            raise MergeError(
                f"{self.name}: eps mismatch ({self.eps} vs {other.eps})"
            )
        if self.universe_log2 != other.universe_log2:
            raise MergeError(
                f"{self.name}: universe mismatch "
                f"(2**{self.universe_log2} vs 2**{other.universe_log2})"
            )
        if self.exact_cutoff != other.exact_cutoff:
            raise MergeError(
                f"{self.name}: exact_cutoff mismatch "
                f"({self.exact_cutoff} vs {other.exact_cutoff})"
            )
        for level, (mine, theirs) in enumerate(
            zip(self._levels, other._levels)
        ):
            if type(mine) is not type(theirs):
                raise MergeError(
                    f"{self.name}: level {level} estimator kind mismatch"
                )
        # Validate-then-mutate: the loop above (and the hash checks inside
        # each estimator merge) run before any counter is touched only if
        # every estimator checks before adding — they do, so a mismatch at
        # level k could leave levels < k merged.  Check all hashes first.
        for mine, theirs in zip(self._levels, other._levels):
            checker = getattr(mine, "merge_compatible", None)
            if checker is not None and not checker(theirs):
                raise MergeError(
                    f"{self.name}: level hash functions differ; build "
                    "shard sketches from the same seed to merge them"
                )
        for mine, theirs in zip(self._levels, other._levels):
            mine.merge(theirs)
        self._n += other._n

    # -- introspection ----------------------------------------------------

    def validate(self) -> "DyadicQuantiles":
        """Check the dyadic structure's invariants; return ``self``.

        Verified: the element count is a non-negative integer, one level
        structure exists per dyadic level, and every exact-counter level
        holds non-negative cell counts summing to exactly ``n`` (each
        level partitions the universe, so each must account for every
        element).  Sketched levels carry signed counters by design and
        are covered by the snapshot checksum instead.  Called by
        :func:`repro.core.snapshot.restore`.

        Raises:
            CorruptSummaryError: if any invariant is violated.
        """
        if not isinstance(self._n, int) or self._n < 0:
            raise CorruptSummaryError(
                f"{self.name}: bad element count {self._n!r}"
            )
        if len(self._levels) != self.universe_log2:
            raise CorruptSummaryError(
                f"{self.name}: {len(self._levels)} level structures, "
                f"expected {self.universe_log2}"
            )
        for level, est in enumerate(self._levels):
            if not isinstance(est, ExactCounter):
                continue
            counts = est._counts
            if counts.size and int(counts.min()) < 0:
                raise CorruptSummaryError(
                    f"{self.name}: negative count at exact level {level}"
                )
            if int(counts.sum()) != self._n:
                raise CorruptSummaryError(
                    f"{self.name}: exact level {level} sums to "
                    f"{int(counts.sum())}, expected n={self._n}"
                )
        return self

    def exact_levels(self) -> List[int]:
        """Levels currently backed by exact counters."""
        return [
            level
            for level, est in enumerate(self._levels)
            if isinstance(est, ExactCounter)
        ]

    def level_variance(self, level: int) -> float:
        """Variance proxy for one estimate at ``level`` (0 if exact)."""
        return float(self._levels[level].variance_estimate())

    def size_words(self) -> int:
        """Sum of the level structures plus the element counter."""
        return 1 + sum(est.size_words() for est in self._levels)
