"""OLS post-processing for dyadic sketches (Section 3.2).

The per-level estimates of a dyadic sketch are redundant: the true count
at a node equals the sum at its two children, but independent sketches
know nothing of each other, so their estimates disagree.  Treating the
leaf frequencies of a *truncated* dyadic tree as unknowns and every node
estimate as a noisy linear observation yields an ordinary-least-squares
problem; the Gauss–Markov theorem says its solution (the BLUE) minimizes
the variance of *every* linear functional of the leaves — in particular
of every rank, which is what quantile queries consume.

Pipeline (all linear in the truncated tree size, ``O((1/eps) log u)``):

1. **Truncate** (Section 3.2.2): walk the dyadic tree top-down, expanding
   only nodes whose estimated count exceeds ``eta * eps * n``.  Every
   expanded node keeps both children, so the tree stays full-binary.
2. **Decompose** at exact nodes: levels stored exactly (variance 0)
   shield their subtrees, so each deepest-exact node roots an independent
   BLUE problem (Definition 1 with ``sigma_r = 0``).
3. **Solve** each subtree with the three-traversal algorithm of Section
   3.2.3: node weights ``lambda`` / ``pi`` from the bottom-up system (2),
   then ``Z``, ``Delta``, ``F`` and finally the corrected counts ``x*``
   from (3).

Erratum implemented here (see DESIGN.md): for internal nodes the paper
defines ``Z_v = sum_{w < v} lambda_w Z_w``, but reproducing its own worked
example (Fig. 3 / Table 2) requires ``Z_v = sum_{w < v} Z_w`` — the leaf
``Z_w`` values already carry their ``lambda`` factor.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.base import validate_phi
from repro.core.errors import EmptySummaryError, InvalidParameterError


class TreeNode:
    """A node of a (truncated) estimate tree.

    Attributes:
        y: the observed (estimated or exact) count of the node's interval.
        sigma2: variance of the observation; 0 marks an exact node.
        children: zero or exactly two child nodes.
        lo, hi: the value interval ``[lo, hi)`` covered (optional, used by
            query snapshots; pure solver tests may leave them at 0).
        xstar: the corrected count, filled in by :func:`blue_correct`.
    """

    __slots__ = (
        "y", "sigma2", "children", "lo", "hi", "xstar",
        "_beta", "_alpha", "lam", "pi", "_zprime", "z",
    )

    def __init__(
        self,
        y: float,
        sigma2: float,
        children: Optional[List["TreeNode"]] = None,
        lo: int = 0,
        hi: int = 0,
    ) -> None:
        if children and len(children) != 2:
            raise InvalidParameterError(
                "estimate-tree nodes must have exactly 0 or 2 children"
            )
        self.y = float(y)
        self.sigma2 = float(sigma2)
        self.children = children or []
        self.lo = lo
        self.hi = hi
        self.xstar: Optional[float] = None
        self._beta = 0.0
        self._alpha = 0.0
        self.lam = 0.0
        self.pi = 0.0
        self._zprime = 0.0
        self.z = 0.0

    def is_leaf(self) -> bool:
        return not self.children

    def walk(self):
        """Yield every node, parents before children."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children)


def blue_correct(root: TreeNode) -> None:
    """Compute the BLUE ``x*`` for every node of one subtree in place.

    Requirements (Definition 1): ``root.sigma2 == 0`` (its count is exact)
    and every other node has ``sigma2 > 0``.  After the call each node's
    ``xstar`` holds the corrected count; parents equal the sum of their
    children exactly, and ``root.xstar == root.y``.
    """
    if root.sigma2 != 0.0:
        raise InvalidParameterError("subtree root must be exact (sigma2=0)")
    if root.is_leaf():
        root.xstar = root.y
        return
    nodes_topdown = list(root.walk())
    for node in nodes_topdown:
        if node is not root and node.sigma2 <= 0.0:
            raise InvalidParameterError(
                "only the subtree root may be exact (sigma2=0)"
            )

    # --- bottom-up: beta (and the children's alpha split ratios) --------
    for node in reversed(nodes_topdown):
        if node.is_leaf():
            node._beta = 1.0 / node.sigma2
            continue
        c1, c2 = node.children
        total = c1._beta + c2._beta
        c1._alpha = c2._beta / total
        c2._alpha = c1._beta / total
        # pi_v = pi_{left child} + lambda_v / sigma_v^2 and
        # pi_{left child} = beta_c1 * lambda_c1 = beta_c1 * alpha_c1 * lam_v.
        own = 0.0 if node is root else 1.0 / node.sigma2
        node._beta = c1._beta * c1._alpha + own

    # --- top-down: lambda and pi ----------------------------------------
    root.lam = 1.0
    for node in nodes_topdown:
        if node is root:
            node.pi = node._beta  # pi of root is unused (sigma_r = 0)
        else:
            node.pi = node._beta * node.lam
        for child in node.children:
            child.lam = child._alpha * node.lam

    # --- traversal 1: Z' (prefix sums of y/sigma^2 along root paths) ----
    root._zprime = 0.0
    for node in nodes_topdown:
        for child in node.children:
            child._zprime = node._zprime + child.y / child.sigma2

    # --- traversal 2: Z (leaf Z = lambda * Z'; internal = sum of leaves) -
    for node in reversed(nodes_topdown):
        if node.is_leaf():
            node.z = node.lam * node._zprime
        else:
            node.z = node.children[0].z + node.children[1].z

    # --- traversal 3: Delta, F, x* ---------------------------------------
    delta = (root.z - root.y * root.children[0].pi) / root.lam
    root.xstar = root.y
    f_root = 0.0
    stack = [(root, f_root)]
    while stack:
        node, f_parent = stack.pop()
        if node is not root:
            node.xstar = (
                node.z - node.lam * f_parent - node.lam * delta
            ) / node.pi
            f_here = f_parent + node.xstar / node.sigma2
        else:
            f_here = 0.0
        for child in node.children:
            stack.append((child, f_here))


def blue_correct_forest(root: TreeNode) -> None:
    """Correct a full truncated tree whose top is a band of exact nodes.

    Exact nodes keep ``x* = y``.  Each deepest exact node whose children
    are estimated roots an independent BLUE subproblem.
    """
    if root.sigma2 != 0.0:
        raise InvalidParameterError("tree root must be exact (sigma2=0)")
    stack = [root]
    while stack:
        node = stack.pop()
        node.xstar = node.y
        if node.is_leaf():
            continue
        if all(child.sigma2 > 0.0 for child in node.children):
            blue_correct(node)  # sets the whole subtree, incl. node again
        elif all(child.sigma2 == 0.0 for child in node.children):
            stack.extend(node.children)
        else:
            raise InvalidParameterError(
                "exactness must be uniform per level: a node cannot mix an "
                "exact child with an estimated child"
            )


def brute_force_blue(root: TreeNode) -> None:
    """Reference BLUE via an explicit constrained weighted least squares.

    Solves ``min sum_{v != r} (y_v - A_v x)^2 / sigma_v^2`` subject to
    ``sum(x) == y_r`` with a KKT linear system over the leaf unknowns.
    O(tau^3); used only by tests to validate :func:`blue_correct`.
    """
    if root.is_leaf():
        root.xstar = root.y
        return
    leaves = [node for node in root.walk() if node.is_leaf()]
    index = {id(leaf): i for i, leaf in enumerate(leaves)}
    tau = len(leaves)

    rows = []
    weights = []
    targets = []

    def leaf_mask(node: TreeNode) -> np.ndarray:
        mask = np.zeros(tau)
        for leaf in node.walk():
            if leaf.is_leaf():
                mask[index[id(leaf)]] = 1.0
        return mask

    for node in root.walk():
        if node is root:
            continue
        rows.append(leaf_mask(node))
        weights.append(1.0 / node.sigma2)
        targets.append(node.y)
    a = np.asarray(rows)
    w = np.asarray(weights)
    t = np.asarray(targets)

    # KKT system for min (Ax - t)' W (Ax - t) s.t. 1'x = y_r.
    ata = a.T @ (w[:, None] * a)
    rhs = a.T @ (w * t)
    kkt = np.zeros((tau + 1, tau + 1))
    kkt[:tau, :tau] = 2 * ata
    kkt[:tau, tau] = 1.0
    kkt[tau, :tau] = 1.0
    full_rhs = np.concatenate([2 * rhs, [root.y]])
    solution = np.linalg.solve(kkt, full_rhs)[:tau]

    for leaf, value in zip(leaves, solution):
        leaf.xstar = float(value)
    # Internal nodes: sums of their leaves.
    for node in reversed(list(root.walk())):
        if not node.is_leaf():
            node.xstar = sum(child.xstar for child in node.children)


class PostProcessedSnapshot:
    """A queryable OLS-corrected snapshot of a dyadic sketch.

    Builds the truncated tree (Section 3.2.2) from the sketch's current
    state, runs :func:`blue_correct_forest`, and answers rank/quantile
    queries from the corrected leaf counts, interpolating uniformly inside
    leaf intervals.  The snapshot is immutable: take a new one after
    further updates.

    Args:
        sketch: any :class:`~repro.turnstile.dyadic.DyadicQuantiles`
            whose estimators expose ``variance_estimate`` (DCS is the
            intended one).
        eta: truncation threshold multiplier (Fig. 9; paper sweet spot
            0.1).  Nodes estimated at or below ``eta * eps * n`` are kept
            as leaves and not expanded.
    """

    def __init__(self, sketch, eta: float = 0.1) -> None:
        if eta < 0:
            raise InvalidParameterError(f"eta must be >= 0, got {eta!r}")
        self._universe = sketch.universe
        self._n = sketch.n
        self.eta = eta
        self.root = self._build_tree(sketch)
        blue_correct_forest(self.root)
        self._leaf_bounds, self._leaf_cum = self._leaf_prefix()

    # -- construction -----------------------------------------------------

    def _build_tree(self, sketch) -> TreeNode:
        log_u = sketch.universe_log2
        threshold = self.eta * sketch.eps * max(sketch.n, 1)
        variances = [sketch.level_variance(lv) for lv in range(log_u)]

        def make(level: int, cell: int) -> TreeNode:
            """Node for the level-``level`` dyadic cell ``cell``."""
            lo = cell << level
            hi = lo + (1 << level)
            if level == log_u:
                y, sigma2 = float(sketch.n), 0.0
            else:
                y = float(sketch.level_estimate(level, cell))
                sigma2 = variances[level]
            node = TreeNode(y, sigma2, lo=lo, hi=hi)
            if level > 0 and y > threshold:
                node.children = [
                    make(level - 1, cell * 2),
                    make(level - 1, cell * 2 + 1),
                ]
            return node

        return make(log_u, 0)

    def _leaf_prefix(self):
        """Sorted leaf interval bounds and cumulative corrected counts.

        Corrected leaf counts can be slightly negative (Count-Sketch noise
        survives OLS); clamping them would bias the total mass upward, so
        instead the raw prefix sums are made monotone by a running-maximum
        envelope.  BLUE consistency keeps the total at exactly ``n``, and
        rank queries interpolate a monotone piecewise-linear CDF.
        """
        leaves = [node for node in self.root.walk() if node.is_leaf()]
        leaves.sort(key=lambda node: node.lo)
        bounds = np.asarray(
            [leaf.lo for leaf in leaves] + [leaves[-1].hi], dtype=np.int64
        )
        counts = np.asarray(
            [leaf.xstar for leaf in leaves], dtype=np.float64
        )
        cum = np.concatenate([[0.0], np.cumsum(counts)])
        return bounds, np.maximum.accumulate(cum)

    # -- queries ------------------------------------------------------------

    @property
    def n(self) -> int:
        return self._n

    def node_count(self) -> int:
        """Size of the truncated tree (Fig. 9's x-axis ingredient)."""
        return sum(1 for _ in self.root.walk())

    def rank(self, value) -> float:
        """Corrected estimate of the number of elements < ``value``."""
        value = int(value)
        if value <= 0:
            return 0.0
        if value >= self._universe:
            value = self._universe
        bounds, cum = self._leaf_bounds, self._leaf_cum
        idx = int(np.searchsorted(bounds, value, "right")) - 1
        if idx >= len(cum) - 1:
            return float(cum[-1])
        span = bounds[idx + 1] - bounds[idx]
        frac = (value - bounds[idx]) / span
        return float(cum[idx] + frac * (cum[idx + 1] - cum[idx]))

    def query(self, phi: float) -> int:
        """Approximate ``phi``-quantile from the corrected counts."""
        validate_phi(phi)
        if self._n <= 0:
            raise EmptySummaryError("Post: cannot query an empty snapshot")
        bounds, cum = self._leaf_bounds, self._leaf_cum
        target = min(float(cum[-1]), max(0.0, phi * self._n))
        idx = int(np.searchsorted(cum, target, "right")) - 1
        idx = min(idx, len(cum) - 2)
        width = cum[idx + 1] - cum[idx]
        frac = 0.0 if width <= 0 else (target - cum[idx]) / width
        span = bounds[idx + 1] - bounds[idx]
        value = bounds[idx] + frac * span
        return min(self._universe - 1, int(value))

    def query_batch(self, phis) -> list:
        """All ``phi`` answered from the one cached leaf prefix."""
        return [self.query(phi) for phi in phis]

    def quantiles(self, phis) -> list:
        """Alias for :meth:`query_batch` (summary API naming)."""
        return self.query_batch(phis)

    def size_words(self) -> int:
        """Words held by the snapshot: ~4 per tree node (interval, y,
        sigma ref, x*)."""
        return 4 * self.node_count()


from repro.core.registry import register  # noqa: E402
from repro.core.snapshot import snapshottable  # noqa: E402
from repro.turnstile.dcs import DyadicCountSketch  # noqa: E402


@snapshottable("post")
@register("post")
class DCSWithPostProcessing(DyadicCountSketch):
    """DCS whose queries go through the OLS post-processing step.

    The paper's "Post" algorithm (Figs. 9-12): identical streaming state
    to DCS — post-processing happens only at query time, so update cost
    and space are unchanged — but ranks and quantiles come from a
    corrected snapshot, rebuilt lazily after each batch of updates.
    """

    name = "Post"

    def __init__(
        self,
        eps: float,
        universe_log2: int,
        seed=None,
        width=None,
        depth: int = 7,
        exact_cutoff=None,
        eta: float = 0.1,
    ) -> None:
        super().__init__(
            eps, universe_log2, seed=seed, width=width, depth=depth,
            exact_cutoff=exact_cutoff,
        )
        self.eta = eta
        self._snapshot_cache = None

    def _invalidate(self) -> None:
        self._snapshot_cache = None

    def update(self, value) -> None:
        self._invalidate()
        super().update(value)

    def delete(self, value) -> None:
        self._invalidate()
        super().delete(value)

    def update_batch(self, values, deltas=1) -> None:
        self._invalidate()
        super().update_batch(values, deltas)

    def snapshot(self) -> PostProcessedSnapshot:
        """The current corrected snapshot (cached until the next update)."""
        if self._snapshot_cache is None:
            self._snapshot_cache = self.post_processed(eta=self.eta)
        return self._snapshot_cache

    def __getstate__(self):
        """Drop the corrected-snapshot cache from checkpoints: it is a
        deep node tree, derivable from the streaming state, and rebuilt
        lazily on the first post-restore query."""
        state = self.__dict__.copy()
        state["_snapshot_cache"] = None
        return state

    def rank(self, value) -> float:
        return self.snapshot().rank(value)

    def query(self, phi: float) -> int:
        validate_phi(phi)
        self._require_nonempty()
        return self.snapshot().query(phi)

    def query_batch(self, phis) -> list:
        """Route batched queries through the corrected snapshot too —
        the inherited dyadic binary search would bypass the OLS step."""
        for phi in phis:
            validate_phi(phi)
        self._require_nonempty()
        return self.snapshot().query_batch(phis)
