"""Turnstile (insert+delete) quantile algorithms (Section 3)."""

from repro.turnstile.dcm import DyadicCountMin
from repro.turnstile.dcs import DyadicCountSketch
from repro.turnstile.dyadic import DyadicQuantiles
from repro.turnstile.postprocess import (
    DCSWithPostProcessing,
    PostProcessedSnapshot,
    TreeNode,
    blue_correct,
    blue_correct_forest,
    brute_force_blue,
)
from repro.turnstile.rss import RandomSubsetSums

__all__ = [
    "DCSWithPostProcessing",
    "DyadicCountMin",
    "DyadicCountSketch",
    "DyadicQuantiles",
    "PostProcessedSnapshot",
    "RandomSubsetSums",
    "TreeNode",
    "blue_correct",
    "blue_correct_forest",
    "brute_force_blue",
]
