"""RSS — dyadic random subset sums, Gilbert et al.'s original turnstile
quantile algorithm [13].

One :class:`~repro.sketches.subset_sum.SubsetSumSketch` per dyadic level.
Each counter's variance is ``Theta(F_2)`` regardless of how many counters
there are — so reaching error ``eps * n`` takes ``O(1/eps**2)`` counters
per level, a quadratic dependence that DCM and DCS avoid.  The paper
excludes RSS from most figures for exactly this reason ("its performance
is much worse"); we implement it for completeness, for Table 1, and so
benches can demonstrate the gap.

The defaults are sized for experimentation, not for the theoretical
guarantee: ``groups = 5`` and ``reps = ceil(4 / eps)`` (capped), which is
already far larger than the other sketches at small ``eps``.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.core.registry import register
from repro.core.snapshot import snapshottable
from repro.sketches.subset_sum import SubsetSumSketch
from repro.turnstile.dyadic import DyadicQuantiles


@snapshottable("rss")
@register("rss")
class RandomSubsetSums(DyadicQuantiles):
    """Dyadic random-subset-sum turnstile quantile sketch.

    Args:
        eps: target rank error (advisory; see module docstring).
        universe_log2: log2 of the universe size (at most 32).
        seed: hash randomness.
        groups: independent estimator groups per level (median over these).
        reps: counters per group (mean within a group); default scales
            like ``1/eps`` and is capped at 4096 to stay runnable.
        exact_cutoff: see :class:`DyadicQuantiles`.
    """

    name = "RSS"

    def __init__(
        self,
        eps: float,
        universe_log2: int,
        seed: Optional[int] = None,
        groups: int = 5,
        reps: Optional[int] = None,
        exact_cutoff: Optional[int] = None,
    ) -> None:
        self.groups = groups
        self.reps = reps if reps is not None else min(
            4096, max(8, math.ceil(4.0 / eps))
        )
        super().__init__(eps, universe_log2, seed, exact_cutoff)

    def _sketch_words(self) -> int:
        return self.groups * self.reps

    def _make_estimator(self, level: int):
        return SubsetSumSketch(self.groups, self.reps, rng=self._rng)
