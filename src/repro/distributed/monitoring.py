"""Continuous distributed quantile monitoring (the paper's refs [9], [30]).

The one-shot protocols in :mod:`repro.distributed.protocols` answer a
single query.  Monitoring is harder: ``k`` sites each receive their own
stream *over time*, and a coordinator must be able to answer quantiles
over the union **at any moment** while paying communication only when
distributions actually move.

Protocol (the standard threshold scheme, simplified from [9]):

* every site keeps a local eps/2 summary (GKArray) plus a counter of
  elements accumulated since its last synchronization;
* a site synchronizes — ships its summary snapshot (3 words per tuple)
  and its exact count — whenever the unsynchronized count exceeds
  ``theta = max(1, eps * N / (2k))``, where ``N`` is the global count at
  the last round; the coordinator rebroadcasts ``N`` on every sync
  (metered as one word per site);
* the coordinator answers from the latest snapshots by *rank merging*:
  the rank of ``v`` is the sum of per-site rank estimates, and a
  quantile query binary-searches the merged candidate values.

Error at query time is at most ``eps * N``: the snapshots contribute
``(eps/2) * N_synced`` and the unsynchronized elements at most
``k * theta = (eps/2) * N``.  Communication grows with ``(k/eps) log``
factors rather than with ``n`` — the point of the scheme.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.cash_register.gk_array import GKArray
from repro.core.base import validate_eps, validate_phi
from repro.core.errors import EmptySummaryError, InvalidParameterError
from repro.obs import metrics as obs_metrics
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import span


class _SiteState:
    """Coordinator-side view of one site."""

    __slots__ = ("summary", "synced_n", "pending")

    def __init__(self, eps: float) -> None:
        self.summary = GKArray(eps=eps)  # local, authoritative
        self.synced_n = 0  # elements covered by the last snapshot
        self.pending = 0  # elements observed since the last sync


class _Snapshot:
    """An immutable shipped copy of a site summary (values/gs/deltas)."""

    __slots__ = ("values", "gs", "deltas", "n")

    def __init__(self, summary: GKArray) -> None:
        summary._prepare_query()
        self.values = np.asarray(summary._values)
        self.gs = np.asarray(summary._gs, dtype=np.int64)
        self.deltas = np.asarray(summary._deltas, dtype=np.int64)
        self.n = summary.n

    def size_words(self) -> int:
        return 3 * len(self.values) + 1

    def rank(self, value: float) -> float:
        """Midpoint rank estimate of ``value`` within this snapshot."""
        if len(self.values) == 0:
            return 0.0
        idx = int(np.searchsorted(self.values, value, "right"))
        if idx == 0:
            return 0.0
        rmin = int(self.gs[:idx].sum())
        return max(0.0, rmin + float(self.deltas[idx - 1]) / 2.0 - 1.0)


class ContinuousQuantileMonitor:
    """Coordinator + ``k`` sites with threshold-triggered synchronization.

    Args:
        sites: number of observation sites.
        eps: total rank error budget at the coordinator.
    """

    def __init__(self, sites: int, eps: float) -> None:
        if sites < 1:
            raise InvalidParameterError(f"sites must be >= 1, got {sites!r}")
        self.eps = validate_eps(eps)
        self.k = sites
        self._sites: Dict[int, _SiteState] = {
            i: _SiteState(eps / 2.0) for i in range(sites)
        }
        self._snapshots: Dict[int, Optional[_Snapshot]] = {
            i: None for i in range(sites)
        }
        self._known_n = 0  # coordinator's count as of the last sync round
        # Communication accounting lives in a private always-on registry;
        # the historical fields read through it (mirrored globally when
        # the process-wide recorder is enabled — see _count).
        self.metrics = MetricsRegistry()

    def _count(self, metric: str, amount: int = 1) -> None:
        name = "distributed.monitoring.sync." + metric
        self.metrics.inc(name, amount)
        rec = obs_metrics.recorder()
        if rec.enabled:
            rec.inc(name, amount)

    @property
    def words_sent(self) -> int:
        return int(
            self.metrics.counter("distributed.monitoring.sync.words").value
        )

    @property
    def messages_sent(self) -> int:
        return int(
            self.metrics.counter("distributed.monitoring.sync.messages").value
        )

    @property
    def syncs(self) -> int:
        return int(
            self.metrics.counter("distributed.monitoring.sync.rounds").value
        )

    # ------------------------------------------------------------------
    # site side
    # ------------------------------------------------------------------

    def _threshold(self) -> int:
        return max(1, math.floor(self.eps * self._known_n / (2.0 * self.k)))

    def observe(self, site_id: int, value: float) -> bool:
        """One element arrives at ``site_id``; returns True if it
        triggered a synchronization."""
        if site_id not in self._sites:
            raise InvalidParameterError(f"unknown site {site_id!r}")
        state = self._sites[site_id]
        state.summary.update(value)
        state.pending += 1
        if state.pending > self._threshold():
            self._sync(site_id)
            return True
        return False

    def _sync(self, site_id: int) -> None:
        with span("distributed.monitoring.sync", site=site_id):
            state = self._sites[site_id]
            snapshot = _Snapshot(state.summary)
            self._snapshots[site_id] = snapshot
            state.synced_n = snapshot.n
            state.pending = 0
            self._count("words", snapshot.size_words())
            self._count("messages")
            self._count("rounds")
            # Coordinator learns the new global count and rebroadcasts it
            # so every site's threshold tracks N (one word per site).
            self._known_n = sum(s.synced_n for s in self._sites.values())
            self._count("words", self.k)
            self._count("messages", self.k)
            rec = obs_metrics.recorder()
            if rec.enabled:
                rec.set("distributed.monitoring.known_n", self._known_n)

    # ------------------------------------------------------------------
    # coordinator side
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        """True global element count (for evaluation; the coordinator's
        own view lags by at most ``k * threshold``)."""
        return sum(
            s.synced_n + s.pending for s in self._sites.values()
        )

    def coordinator_rank(self, value: float) -> float:
        """Rank estimate using only shipped snapshots (no communication)."""
        return sum(
            snap.rank(value)
            for snap in self._snapshots.values()
            if snap is not None
        )

    def query(self, phi: float) -> float:
        """Coordinator-side quantile over the union, from snapshots only."""
        validate_phi(phi)
        snaps = [s for s in self._snapshots.values() if s is not None]
        if not snaps:
            raise EmptySummaryError(
                "coordinator has no snapshots yet (no site synced)"
            )
        candidates = np.sort(np.concatenate([s.values for s in snaps]))
        target = phi * self._known_n
        lo, hi = 0, len(candidates) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self.coordinator_rank(candidates[mid]) < target:
                lo = mid + 1
            else:
                hi = mid
        return candidates[lo]

    def query_batch(self, phis: Sequence[float]) -> List:
        return [self.query(phi) for phi in phis]

    def quantiles(self, phis: Sequence[float]) -> List:
        """Alias for :meth:`query_batch` (summary API naming)."""
        return self.query_batch(phis)
