"""Distributed quantile aggregation (the paper's sensor-network context)."""

from repro.distributed.faults import FaultDecision, FaultInjector, FaultPlan
from repro.distributed.monitoring import ContinuousQuantileMonitor
from repro.distributed.network import (
    AggregationNetwork,
    SimClock,
    Site,
    TransmitResult,
    make_network,
)
from repro.distributed.protocols import (
    ProtocolResult,
    merge_summaries,
    sample_and_send,
    ship_everything,
)

__all__ = [
    "AggregationNetwork",
    "ContinuousQuantileMonitor",
    "FaultDecision",
    "FaultInjector",
    "FaultPlan",
    "ProtocolResult",
    "SimClock",
    "Site",
    "TransmitResult",
    "make_network",
    "merge_summaries",
    "sample_and_send",
    "ship_everything",
]
