"""Distributed quantile protocols over an aggregation network.

Three ways to get quantiles of the union of all sites' data to the base
station, in increasing cleverness:

* :func:`ship_everything` — the baseline: every site forwards raw data
  up the tree.  Exact, and pays ``Theta(n * depth)`` words.
* :func:`merge_summaries` — each site summarizes its shard with a
  *mergeable* summary (q-digest [26] or Random [1]); summaries merge at
  every inner node, so each edge carries one summary regardless of how
  much data sits below.  Communication ``O(sites * summary_size)``.
* :func:`sample_and_send` — the sampling protocol in the spirit of
  Huang et al. [17]: every site sends a uniform sample of its shard of
  size proportional to the shard, totalling ``Theta(1/eps**2)`` (the
  classic sample bound) regardless of ``n``.  The root answers from the
  weighted union of the samples.

Every protocol returns a :class:`ProtocolResult` with the queryable
answer object, the words/messages metered by the network, and the
observed error helper.

Fault tolerance.  ``merge_summaries`` and ``sample_and_send`` accept a
:class:`~repro.distributed.faults.FaultPlan` (or run on a network with an
injector already attached).  Summaries then travel as checksummed
snapshot envelopes over the network's reliable ack/retry transport
(:meth:`~repro.distributed.network.AggregationNetwork.transmit`), and the
protocols *degrade instead of crashing*: a crashed site (or an edge whose
retries are exhausted) silently removes its subtree's mass from the
answer, and the result reports ``coverage`` — the fraction of the stream
represented at the root — together with ``effective_eps``, the error
bound against the *full* stream::

    effective_eps = coverage * eps + (1 - coverage)

(the surviving mass is answered within ``eps`` of itself, and the lost
mass can shift any rank by at most its own fraction).  Only a crashed
*root* still raises, since then there is nowhere to answer from
(:class:`~repro.core.errors.SiteUnavailableError`).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.core.base import QuantileSketch
from repro.core.errors import SiteUnavailableError, UnmergeableSketchError
from repro.core.registry import merge_shares_seed, supports_merge
from repro.core.snapshot import (
    decode_payload,
    encode_payload,
    restore,
    snapshot,
)
from repro.distributed.faults import FaultInjector, FaultPlan
from repro.distributed.network import AggregationNetwork, Site

#: Either fault description accepted by the fault-aware protocols.
FaultsArg = Optional[Union[FaultPlan, FaultInjector]]
from repro.sketches.hashing import make_rng


@dataclasses.dataclass
class ProtocolResult:
    """Outcome of one protocol run."""

    name: str
    words_sent: int
    messages_sent: int
    answerer: object  #: supports quantiles(phis)
    #: Fraction of the stream represented at the root (1.0 when lossless).
    coverage: float = 1.0
    #: Error bound vs. the full stream, degraded by the lost mass.
    effective_eps: Optional[float] = None
    #: Words re-sent by the reliable transport (excluded from words_sent).
    retransmitted_words: int = 0
    #: Number of retransmission attempts.
    retransmissions: int = 0
    #: Sites whose data never reached the root (crashed or undeliverable).
    lost_sites: Tuple[int, ...] = ()

    def max_rank_error(
        self, truth_sorted: np.ndarray, phis: Sequence[float]
    ) -> float:
        """Observed max normalized rank error at the root."""
        n = len(truth_sorted)
        worst = 0.0
        for phi, answer in zip(phis, self.answerer.query_batch(list(phis))):
            lo = float(np.searchsorted(truth_sorted, answer, "left"))
            hi = float(np.searchsorted(truth_sorted, answer, "right"))
            target = phi * n
            err = 0.0 if lo <= target <= hi else min(
                abs(target - lo), abs(target - hi)
            )
            worst = max(worst, err / n)
        return worst

    def accounting(self) -> Dict[str, object]:
        """Every accounting field as a plain dict (determinism checks)."""
        return {
            "name": self.name,
            "words_sent": self.words_sent,
            "messages_sent": self.messages_sent,
            "coverage": self.coverage,
            "effective_eps": self.effective_eps,
            "retransmitted_words": self.retransmitted_words,
            "retransmissions": self.retransmissions,
            "lost_sites": self.lost_sites,
        }


class _SortedAnswerer:
    """Answer quantiles from a (possibly weighted) sorted sample."""

    def __init__(self, values: np.ndarray, total_n: int) -> None:
        self._values = np.sort(values)
        self.n = total_n

    def query_batch(self, phis: Sequence[float]) -> list:
        idx = np.minimum(
            len(self._values) - 1,
            (np.asarray(phis) * len(self._values)).astype(np.int64),
        )
        return self._values[idx].tolist()

    def quantiles(self, phis: Sequence[float]) -> list:
        """Alias for :meth:`query_batch` (summary API naming)."""
        return self.query_batch(phis)


def ship_everything(network: AggregationNetwork) -> ProtocolResult:
    """Baseline: forward raw shards up the tree; exact at the root."""
    carried = {sid: len(site.data) for sid, site in network.sites.items()}
    for sid in network.postorder():
        site = network.sites[sid]
        total = carried[sid]
        if site.parent is not None:
            network.send(total)
            carried[site.parent] += total
    answerer = _SortedAnswerer(network.union_sorted(), network.total_n())
    return ProtocolResult(
        "ship-everything", network.words_sent, network.messages_sent,
        answerer, effective_eps=0.0,
    )


def _use_fault_path(network: AggregationNetwork, faults: FaultsArg) -> bool:
    """Attach ``faults`` if given; True when the fault-aware path runs."""
    if faults is not None:
        network.attach_faults(faults)
    return network.injector is not None


def _require_live_root(network: AggregationNetwork) -> None:
    if network.is_crashed(0):
        raise SiteUnavailableError(
            "the root (base station) has crashed; nothing can aggregate"
        )


def _effective_eps(eps: float, coverage: float) -> float:
    """Error bound vs. the full stream when only ``coverage`` survived."""
    return coverage * eps + (1.0 - coverage)


def merge_summaries(
    network: AggregationNetwork,
    eps: float,
    summary: str = "qdigest",
    universe_log2: int = 16,
    seed: Optional[int] = None,
    faults: FaultsArg = None,
) -> ProtocolResult:
    """Mergeable-summary aggregation ([26] / [1]).

    Each site builds a summary of its shard, merges in its children's
    summaries, and forwards one summary upward.  The per-edge payload is
    the summary's ``size_words()`` at send time.

    Args:
        summary: any registry algorithm whose class advertises
            ``mergeable`` (see
            :func:`repro.core.registry.mergeable_algorithms`); sketches
            that cannot merge raise
            :class:`~repro.core.errors.UnmergeableSketchError`.
            Shared-seed sketches (the linear ones — dcs, dcm, post, rss)
            get the same master seed at every site so their hash
            functions line up; the rest get independent per-site seeds.
        faults: optional :class:`~repro.distributed.faults.FaultPlan` (or
            injector).  When given — or when the network already has one
            attached — summaries travel as checksummed snapshots over the
            reliable transport, crashed subtrees degrade ``coverage``
            instead of crashing the run, and restored payloads are
            integrity-checked before and after every merge.  A lossless
            plan reproduces the plain path bit-for-bit (same accounting,
            same answers).
    """
    if not supports_merge(summary):
        raise UnmergeableSketchError(
            f"summary {summary!r} does not support merge; pick one of "
            "repro.core.registry.mergeable_algorithms()"
        )
    from repro.evaluation.harness import build_sketch

    rng = make_rng(seed)
    shared_seed = merge_shares_seed(summary)
    master_seed = int(rng.integers(1 << 30)) if shared_seed else None

    def build(shard: np.ndarray) -> QuantileSketch:
        site_seed = master_seed if shared_seed else int(
            rng.integers(1 << 30)
        )
        sk = build_sketch(
            summary, eps, universe_log2=universe_log2, seed=site_seed
        )
        sk.extend(shard.tolist())
        return sk

    if not _use_fault_path(network, faults):
        summaries = {}
        for sid in network.postorder():
            site = network.sites[sid]
            sk = build(site.data)
            for child in site.children:
                sk.merge(summaries.pop(child))
            summaries[sid] = sk
            if site.parent is not None:
                network.send(sk.size_words())
        root_summary = summaries[0]
        return ProtocolResult(
            f"merge-{summary}", network.words_sent, network.messages_sent,
            root_summary, effective_eps=eps,
        )

    _require_live_root(network)
    total = network.total_n()
    # inbox[parent][child] = (restored summary, site ids it represents)
    inbox: Dict[int, Dict[int, Tuple[object, Set[int]]]] = {}
    lost: Set[int] = set()
    root_summary = None
    for sid in network.postorder():
        site = network.sites[sid]
        delivered = inbox.pop(sid, {})
        if network.is_crashed(sid):
            # The site's own shard dies with it, along with everything its
            # children already handed to it.
            lost.add(sid)
            for _, represents in delivered.values():
                lost |= represents
            continue
        sk = build(site.data)
        represents = {sid}
        for child in site.children:
            if child not in delivered:
                continue
            child_sk, child_set = delivered[child]
            sk.merge(child_sk)
            sk.validate()
            represents |= child_set
        if site.parent is None:
            root_summary = sk
            continue
        blob = snapshot(sk)
        outcome = network.transmit(
            sid, site.parent, sk.size_words(), blob, restore
        )
        if outcome.delivered:
            inbox.setdefault(site.parent, {})[sid] = (
                outcome.payload, represents,
            )
        else:
            lost |= represents
    coverage = root_summary.n / total if total else 1.0
    return ProtocolResult(
        f"merge-{summary}",
        network.words_sent,
        network.messages_sent,
        root_summary,
        coverage=coverage,
        effective_eps=_effective_eps(eps, coverage),
        retransmitted_words=network.retransmitted_words,
        retransmissions=network.retransmissions,
        lost_sites=tuple(sorted(lost)),
    )


def sample_and_send(
    network: AggregationNetwork,
    eps: float,
    seed: Optional[int] = None,
    oversample: float = 1.0,
    faults: FaultsArg = None,
) -> ProtocolResult:
    """Sampling protocol in the spirit of Huang et al. [17].

    A global sample of ``s = oversample * (2/eps**2) * ln(2/eps)`` items
    preserves all quantiles within ``eps`` w.h.p. [28]; each site
    contributes uniformly, proportionally to its shard, and forwards its
    own and its children's samples (relaying costs are metered).

    Args:
        faults: optional :class:`~repro.distributed.faults.FaultPlan` (or
            injector); see :func:`merge_summaries`.  Sample bundles travel
            as checksummed payload envelopes; lost subtrees shrink
            ``coverage`` and the root answers from the surviving sample.
    """
    rng = make_rng(seed)
    total = network.total_n()
    target = math.ceil(
        oversample * (2.0 / eps**2) * math.log(2.0 / eps)
    )
    target = min(target, total)

    def own_sample(site: Site) -> np.ndarray:
        share = math.ceil(target * len(site.data) / max(1, total))
        share = min(share, len(site.data))
        if share:
            picks = rng.choice(len(site.data), size=share, replace=False)
            return site.data[picks]
        return site.data[:0]

    if not _use_fault_path(network, faults):
        collected = {}
        for sid in network.postorder():
            site = network.sites[sid]
            bundle = [own_sample(site)]
            bundle += [collected.pop(c) for c in site.children]
            merged = np.concatenate(bundle)
            collected[sid] = merged
            if site.parent is not None:
                network.send(len(merged))
        answerer = _SortedAnswerer(collected[0], total)
        return ProtocolResult(
            "sample-and-send", network.words_sent, network.messages_sent,
            answerer, effective_eps=eps,
        )

    _require_live_root(network)
    # inbox[parent][child] = (sample array, represented mass, site ids)
    inbox: Dict[int, Dict[int, Tuple[np.ndarray, int, Set[int]]]] = {}
    lost: Set[int] = set()
    root_sample = None
    root_mass = 0
    for sid in network.postorder():
        site = network.sites[sid]
        delivered = inbox.pop(sid, {})
        if network.is_crashed(sid):
            lost.add(sid)
            for _, _, represents in delivered.values():
                lost |= represents
            continue
        bundle = [own_sample(site)]
        mass = len(site.data)
        represents = {sid}
        for child in site.children:
            if child not in delivered:
                continue
            child_sample, child_mass, child_set = delivered[child]
            bundle.append(child_sample)
            mass += child_mass
            represents |= child_set
        merged = np.concatenate(bundle)
        if site.parent is None:
            root_sample = merged
            root_mass = mass
            continue
        outcome = network.transmit(
            sid, site.parent, len(merged),
            encode_payload(merged), decode_payload,
        )
        if outcome.delivered:
            inbox.setdefault(site.parent, {})[sid] = (
                outcome.payload, mass, represents,
            )
        else:
            lost |= represents
    coverage = root_mass / total if total else 1.0
    answerer = _SortedAnswerer(root_sample, root_mass)
    return ProtocolResult(
        "sample-and-send",
        network.words_sent,
        network.messages_sent,
        answerer,
        coverage=coverage,
        effective_eps=_effective_eps(eps, coverage),
        retransmitted_words=network.retransmitted_words,
        retransmissions=network.retransmissions,
        lost_sites=tuple(sorted(lost)),
    )
