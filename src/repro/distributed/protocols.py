"""Distributed quantile protocols over an aggregation network.

Three ways to get quantiles of the union of all sites' data to the base
station, in increasing cleverness:

* :func:`ship_everything` — the baseline: every site forwards raw data
  up the tree.  Exact, and pays ``Theta(n * depth)`` words.
* :func:`merge_summaries` — each site summarizes its shard with a
  *mergeable* summary (q-digest [26] or Random [1]); summaries merge at
  every inner node, so each edge carries one summary regardless of how
  much data sits below.  Communication ``O(sites * summary_size)``.
* :func:`sample_and_send` — the sampling protocol in the spirit of
  Huang et al. [17]: every site sends a uniform sample of its shard of
  size proportional to the shard, totalling ``Theta(1/eps**2)`` (the
  classic sample bound) regardless of ``n``.  The root answers from the
  weighted union of the samples.

Every protocol returns a :class:`ProtocolResult` with the queryable
answer object, the words/messages metered by the network, and the
observed error helper.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional

import numpy as np

from repro.cash_register.qdigest import QDigest
from repro.cash_register.random_sketch import RandomSketch
from repro.core.errors import InvalidParameterError
from repro.distributed.network import AggregationNetwork
from repro.sketches.hashing import make_rng


@dataclasses.dataclass
class ProtocolResult:
    """Outcome of one protocol run."""

    name: str
    words_sent: int
    messages_sent: int
    answerer: object  #: supports quantiles(phis)

    def max_rank_error(self, truth_sorted: np.ndarray, phis) -> float:
        """Observed max normalized rank error at the root."""
        n = len(truth_sorted)
        worst = 0.0
        for phi, answer in zip(phis, self.answerer.quantiles(list(phis))):
            lo = float(np.searchsorted(truth_sorted, answer, "left"))
            hi = float(np.searchsorted(truth_sorted, answer, "right"))
            target = phi * n
            err = 0.0 if lo <= target <= hi else min(
                abs(target - lo), abs(target - hi)
            )
            worst = max(worst, err / n)
        return worst


class _SortedAnswerer:
    """Answer quantiles from a (possibly weighted) sorted sample."""

    def __init__(self, values: np.ndarray, total_n: int) -> None:
        self._values = np.sort(values)
        self.n = total_n

    def quantiles(self, phis) -> list:
        idx = np.minimum(
            len(self._values) - 1,
            (np.asarray(phis) * len(self._values)).astype(np.int64),
        )
        return self._values[idx].tolist()


def ship_everything(network: AggregationNetwork) -> ProtocolResult:
    """Baseline: forward raw shards up the tree; exact at the root."""
    carried = {sid: len(site.data) for sid, site in network.sites.items()}
    for sid in network.postorder():
        site = network.sites[sid]
        total = carried[sid]
        if site.parent is not None:
            network.send(total)
            carried[site.parent] += total
    answerer = _SortedAnswerer(network.union_sorted(), network.total_n())
    return ProtocolResult(
        "ship-everything", network.words_sent, network.messages_sent,
        answerer,
    )


def merge_summaries(
    network: AggregationNetwork,
    eps: float,
    summary: str = "qdigest",
    universe_log2: int = 16,
    seed: Optional[int] = None,
) -> ProtocolResult:
    """Mergeable-summary aggregation ([26] / [1]).

    Each site builds a summary of its shard, merges in its children's
    summaries, and forwards one summary upward.  The per-edge payload is
    the summary's ``size_words()`` at send time.
    """
    if summary not in ("qdigest", "random"):
        raise InvalidParameterError(
            f"summary must be 'qdigest' or 'random', got {summary!r}"
        )
    rng = make_rng(seed)

    def build(shard: np.ndarray):
        if summary == "qdigest":
            sk = QDigest(eps=eps, universe_log2=universe_log2)
        else:
            sk = RandomSketch(eps=eps, seed=int(rng.integers(1 << 30)))
        sk.extend(shard.tolist())
        return sk

    summaries = {}
    for sid in network.postorder():
        site = network.sites[sid]
        sk = build(site.data)
        for child in site.children:
            sk.merge(summaries.pop(child))
        summaries[sid] = sk
        if site.parent is not None:
            network.send(sk.size_words())
    root_summary = summaries[0]
    return ProtocolResult(
        f"merge-{summary}", network.words_sent, network.messages_sent,
        root_summary,
    )


def sample_and_send(
    network: AggregationNetwork,
    eps: float,
    seed: Optional[int] = None,
    oversample: float = 1.0,
) -> ProtocolResult:
    """Sampling protocol in the spirit of Huang et al. [17].

    A global sample of ``s = oversample * (2/eps**2) * ln(2/eps)`` items
    preserves all quantiles within ``eps`` w.h.p. [28]; each site
    contributes uniformly, proportionally to its shard, and forwards its
    own and its children's samples (relaying costs are metered).
    """
    rng = make_rng(seed)
    total = network.total_n()
    target = math.ceil(
        oversample * (2.0 / eps**2) * math.log(2.0 / eps)
    )
    target = min(target, total)
    collected = {}
    for sid in network.postorder():
        site = network.sites[sid]
        share = math.ceil(target * len(site.data) / max(1, total))
        share = min(share, len(site.data))
        if share:
            picks = rng.choice(len(site.data), size=share, replace=False)
            own = site.data[picks]
        else:
            own = site.data[:0]
        bundle = [own] + [collected.pop(c) for c in site.children]
        merged = np.concatenate(bundle)
        collected[sid] = merged
        if site.parent is not None:
            network.send(len(merged))
    answerer = _SortedAnswerer(collected[0], total)
    return ProtocolResult(
        "sample-and-send", network.words_sent, network.messages_sent,
        answerer,
    )
