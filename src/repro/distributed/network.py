"""A simulated aggregation network with message accounting.

The paper's quantile algorithms grew out of sensor-network aggregation
([26], [16], [17]): many sites each observe part of the data, and a base
station wants quantiles of the union while minimizing *communication*,
the scarce resource (radio drains sensor batteries, not CPU).

This module is the substrate the distributed protocols run on: sites
hold local data, a topology wires them toward a root, and every payload
moving along an edge is metered in 4-byte words — the same accounting
the rest of the library uses for memory.

When a :class:`~repro.distributed.faults.FaultInjector` is attached, the
network's :meth:`~AggregationNetwork.transmit` method becomes a reliable
ack/retry transport: per-edge sequence numbers, receiver-side dedup (so
at-least-once delivery cannot double-merge a summary), checksum-verified
payload decoding, and exponential backoff over a simulated clock.  The
paper's communication accounting stays honest: first-attempt traffic is
metered in ``words_sent``/``messages_sent`` exactly as in the lossless
path, while retransmissions are metered separately in
``retransmitted_words``/``retransmissions``.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.core.errors import CorruptSummaryError, InvalidParameterError
from repro.distributed.faults import FaultInjector, FaultPlan
from repro.obs import metrics as obs_metrics
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import span
from repro.sketches.hashing import make_rng


class SimClock:
    """A simulated clock: time only moves when someone waits on it."""

    def __init__(self) -> None:
        self.now = 0.0

    def advance(self, delay: float) -> None:
        if delay < 0:
            raise InvalidParameterError(f"delay must be >= 0, got {delay!r}")
        self.now += delay


@dataclasses.dataclass
class TransmitResult:
    """Outcome of one reliable transmission over an edge."""

    delivered: bool
    attempts: int
    payload: object = None
    #: "" on success; "receiver-crashed" or "retries-exhausted" otherwise.
    reason: str = ""


@dataclasses.dataclass
class Site:
    """One node of the network holding a shard of the data."""

    site_id: int
    data: np.ndarray
    parent: Optional[int]  #: None marks the root (base station)
    children: List[int] = dataclasses.field(default_factory=list)


class AggregationNetwork:
    """Sites wired into a rooted aggregation topology.

    Args:
        shards: one data array per site; site 0 is the root.
        topology: ``"star"`` (every site talks to the root), ``"tree"``
            (balanced binary aggregation tree), or ``"chain"`` (a path —
            the worst case for summary-size accumulation).
        faults: optional :class:`FaultPlan` (or prebuilt
            :class:`FaultInjector`) enabling the reliable transport; see
            :meth:`transmit`.  Without it the network is lossless and
            behaves exactly as it always has.
    """

    def __init__(
        self,
        shards: Sequence[np.ndarray],
        topology: str = "tree",
        faults: Optional[object] = None,
    ) -> None:
        if len(shards) < 1:
            raise InvalidParameterError("need at least one site")
        if topology not in ("star", "tree", "chain"):
            raise InvalidParameterError(
                f"unknown topology {topology!r}; use star, tree, or chain"
            )
        self.topology = topology
        self.sites: Dict[int, Site] = {}
        for i, shard in enumerate(shards):
            self.sites[i] = Site(
                site_id=i,
                data=np.asarray(shard),
                parent=self._parent_of(i, len(shards)),
            )
        for site in self.sites.values():
            if site.parent is not None:
                self.sites[site.parent].children.append(site.site_id)
        # All communication accounting lives in a private, always-on
        # registry; the historical integer fields read through it as
        # properties.  When the process-wide recorder is enabled the same
        # writes are mirrored there (see _count).
        self.metrics = MetricsRegistry()
        # Reliable-transport state (inert until a fault injector is
        # attached).
        self.clock = SimClock()
        self.injector: Optional[FaultInjector] = None
        self._seq: Dict[Tuple[int, int], int] = {}
        self._seen: Set[Tuple[int, int, int]] = set()
        self._sends_completed: Dict[int, int] = {}
        rec = obs_metrics.recorder()
        if rec.enabled:
            rec.set("distributed.net.sites", len(self.sites))
        if faults is not None:
            self.attach_faults(faults)

    # ------------------------------------------------------------------
    # communication accounting
    # ------------------------------------------------------------------

    def _count(self, metric: str, amount: int = 1) -> None:
        """Bump a private counter, mirroring into the global recorder."""
        name = "distributed.net." + metric
        self.metrics.inc(name, amount)
        rec = obs_metrics.recorder()
        if rec.enabled:
            rec.inc(name, amount)

    def _counter_value(self, metric: str) -> int:
        return int(self.metrics.counter("distributed.net." + metric).value)

    @property
    def words_sent(self) -> int:
        """First-attempt payload words (the paper's accounting)."""
        return self._counter_value("words_sent")

    @property
    def messages_sent(self) -> int:
        return self._counter_value("messages_sent")

    @property
    def retransmitted_words(self) -> int:
        return self._counter_value("retransmitted_words")

    @property
    def retransmissions(self) -> int:
        return self._counter_value("retransmissions")

    @property
    def acks_sent(self) -> int:
        return self._counter_value("acks_sent")

    @property
    def drops(self) -> int:
        return self._counter_value("drops")

    @property
    def duplicates_suppressed(self) -> int:
        return self._counter_value("duplicates_suppressed")

    @property
    def corruptions_detected(self) -> int:
        return self._counter_value("corruptions_detected")

    def attach_faults(
        self, faults: Union[FaultPlan, FaultInjector]
    ) -> FaultInjector:
        """Attach a :class:`FaultPlan`/:class:`FaultInjector` and return it.

        Enables the fault-aware behavior of :meth:`transmit`; pass a
        lossless plan to exercise the reliable transport with zero
        injected faults (accounting is then identical to the plain path).
        """
        if isinstance(faults, FaultPlan):
            faults = FaultInjector(faults)
        if not isinstance(faults, FaultInjector):
            raise InvalidParameterError(
                f"faults must be a FaultPlan or FaultInjector, "
                f"got {type(faults).__name__}"
            )
        self.injector = faults
        return faults

    def is_crashed(self, site_id: int) -> bool:
        """Whether ``site_id`` is currently dead under the fault plan."""
        if self.injector is None:
            return False
        return self.injector.site_crashed(
            site_id, self._sends_completed.get(site_id, 0)
        )

    def _parent_of(self, i: int, count: int) -> Optional[int]:
        if i == 0:
            return None
        if self.topology == "star":
            return 0
        if self.topology == "chain":
            return i - 1
        return (i - 1) // 2  # binary tree, root at 0

    @property
    def root(self) -> Site:
        return self.sites[0]

    def total_n(self) -> int:
        """Total elements across all shards."""
        return sum(len(site.data) for site in self.sites.values())

    def union_sorted(self) -> np.ndarray:
        """Ground truth: the sorted union of every site's data."""
        return np.sort(
            np.concatenate([site.data for site in self.sites.values()])
        )

    def send(self, payload_words: int) -> None:
        """Meter one upward message of ``payload_words`` words."""
        if payload_words < 0:
            raise InvalidParameterError("payload_words must be >= 0")
        self._count("words_sent", payload_words)
        self._count("messages_sent")

    def transmit(
        self,
        src: int,
        dst: int,
        payload_words: int,
        blob: Optional[bytes] = None,
        decode: Optional[Callable[[bytes], object]] = None,
    ) -> TransmitResult:
        """Reliably send one message from ``src`` to ``dst``.

        Without an injector this is exactly :meth:`send` plus a decode of
        ``blob``.  With one, the message gets a per-edge sequence number
        and is retried (exponential backoff on the simulated clock) until
        the receiver acks or ``max_retries`` is exhausted:

        * a *dropped* attempt times out and is retransmitted;
        * a *corrupted* payload fails ``decode`` (checksum mismatch →
          :class:`CorruptSummaryError`), is counted in
          ``corruptions_detected``, and is retransmitted — it is never
          accepted;
        * a *duplicated* delivery is detected by the receiver's
          ``(src, dst, seq)`` dedup set and suppressed, keeping merges
          idempotent under at-least-once delivery;
        * a *crashed* receiver never acks, so the sender retries into the
          void and gives up (the words are still metered — radio time was
          really spent).

        First-attempt traffic is metered in ``words_sent`` /
        ``messages_sent`` (unchanged from the lossless path); retries go
        to ``retransmitted_words`` / ``retransmissions``.

        Args:
            src: sending site id.
            dst: receiving site id.
            payload_words: message size under the paper's accounting.
            blob: serialized payload bytes (checksummed envelope).
            decode: callable turning delivered bytes into the payload
                object; must raise :class:`CorruptSummaryError` on a
                damaged blob.

        Returns:
            A :class:`TransmitResult`; ``payload`` holds the decoded
            object of the first accepted copy (``None`` for pure
            accounting sends or on failure).
        """
        if src not in self.sites or dst not in self.sites:
            raise InvalidParameterError(
                f"unknown edge {src!r} -> {dst!r}"
            )
        if self.injector is None:
            self.send(payload_words)
            payload = None
            if blob is not None:
                payload = decode(blob) if decode is not None else blob
            return TransmitResult(True, 1, payload)

        with span("distributed.transmit", src=src, dst=dst):
            result = self._transmit_reliable(src, dst, payload_words, blob, decode)
        rec = obs_metrics.recorder()
        if rec.enabled:
            rec.observe("distributed.net.transmit_attempts", result.attempts)
            rec.set("distributed.net.sim_clock_s", self.clock.now)
        return result

    def _transmit_reliable(
        self,
        src: int,
        dst: int,
        payload_words: int,
        blob: Optional[bytes],
        decode: Optional[Callable[[bytes], object]],
    ) -> TransmitResult:
        injector = self.injector
        plan = injector.plan
        seq = self._seq.get((src, dst), 0)
        self._seq[(src, dst)] = seq + 1
        dst_crashed = self.is_crashed(dst)
        self._sends_completed[src] = self._sends_completed.get(src, 0) + 1

        for attempt in range(plan.max_retries + 1):
            if attempt == 0:
                self.send(payload_words)
            else:
                delay = injector.backoff_delay(attempt)
                self.clock.advance(delay)
                self._count("backoff_wait_s", delay)
                self._count("retransmitted_words", payload_words)
                self._count("retransmissions")
            if dst_crashed:
                continue  # transmitting into the void; no ack ever comes
            decision = injector.decide(src, dst, seq, attempt)
            if decision.drop:
                self._count("drops")
                continue
            copies = 2 if decision.duplicate else 1
            accepted = None
            acked = False
            for copy in range(copies):
                delivered = blob
                if (
                    blob is not None
                    and decision.corrupt
                    and copy == 0
                ):
                    delivered = injector.corrupt_blob(
                        blob, src, dst, seq, attempt
                    )
                if blob is not None and decode is not None:
                    try:
                        payload = decode(delivered)
                    except CorruptSummaryError:
                        self._count("corruptions_detected")
                        continue  # receiver nacks this copy
                elif decision.corrupt and copy == 0:
                    # Accounting-only payload: model the checksum check.
                    self._count("corruptions_detected")
                    continue
                else:
                    payload = delivered
                if (src, dst, seq) in self._seen:
                    self._count("duplicates_suppressed")
                    acked = True  # duplicate is still acknowledged
                    continue
                self._seen.add((src, dst, seq))
                accepted = payload
                acked = True
            if acked:
                self._count("acks_sent")
                return TransmitResult(True, attempt + 1, accepted)
        return TransmitResult(
            False,
            plan.max_retries + 1,
            None,
            "receiver-crashed" if dst_crashed else "retries-exhausted",
        )

    def postorder(self) -> List[int]:
        """Site ids with children before parents (aggregation order)."""
        order: List[int] = []
        stack = [(0, False)]
        while stack:
            site_id, expanded = stack.pop()
            if expanded:
                order.append(site_id)
                continue
            stack.append((site_id, True))
            for child in self.sites[site_id].children:
                stack.append((child, False))
        return order

    def depth(self) -> int:
        """Longest root-to-leaf path (merge layers a summary crosses)."""
        best = 0
        for site in self.sites.values():
            d = 0
            cursor = site
            while cursor.parent is not None:
                cursor = self.sites[cursor.parent]
                d += 1
            best = max(best, d)
        return best


def make_network(
    n: int,
    sites: int,
    topology: str = "tree",
    universe_log2: int = 16,
    seed: Optional[int] = None,
    skew: float = 0.0,
    faults: Optional[object] = None,
) -> AggregationNetwork:
    """Build a network with ``n`` values spread over ``sites`` shards.

    Args:
        skew: 0 gives every site an iid uniform shard; > 0 gives each
            site its own value neighborhood (site i sees mostly values
            near ``i / sites`` of the universe) — the realistic sensor
            case where shards are *not* exchangeable.
        faults: optional :class:`FaultPlan`/:class:`FaultInjector` to
            attach (see :class:`AggregationNetwork`).
    """
    if sites < 1 or n < sites:
        raise InvalidParameterError(
            f"need n >= sites >= 1, got n={n!r} sites={sites!r}"
        )
    rng = make_rng(seed)
    universe = 1 << universe_log2
    per = [n // sites + (1 if i < n % sites else 0) for i in range(sites)]
    shards = []
    for i, size in enumerate(per):
        if skew <= 0:
            shard = rng.integers(0, universe, size=size, dtype=np.int64)
        else:
            center = (i + 0.5) / sites
            spread = max(0.02, 1.0 - skew)
            unit = np.clip(
                rng.normal(center, spread / 2, size=size), 0, 1 - 1e-12
            )
            shard = (unit * universe).astype(np.int64)
        shards.append(shard)
    return AggregationNetwork(shards, topology=topology, faults=faults)
