"""A simulated aggregation network with message accounting.

The paper's quantile algorithms grew out of sensor-network aggregation
([26], [16], [17]): many sites each observe part of the data, and a base
station wants quantiles of the union while minimizing *communication*,
the scarce resource (radio drains sensor batteries, not CPU).

This module is the substrate the distributed protocols run on: sites
hold local data, a topology wires them toward a root, and every payload
moving along an edge is metered in 4-byte words — the same accounting
the rest of the library uses for memory.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.errors import InvalidParameterError
from repro.sketches.hashing import make_rng


@dataclasses.dataclass
class Site:
    """One node of the network holding a shard of the data."""

    site_id: int
    data: np.ndarray
    parent: Optional[int]  #: None marks the root (base station)
    children: List[int] = dataclasses.field(default_factory=list)


class AggregationNetwork:
    """Sites wired into a rooted aggregation topology.

    Args:
        shards: one data array per site; site 0 is the root.
        topology: ``"star"`` (every site talks to the root), ``"tree"``
            (balanced binary aggregation tree), or ``"chain"`` (a path —
            the worst case for summary-size accumulation).
    """

    def __init__(
        self, shards: Sequence[np.ndarray], topology: str = "tree"
    ) -> None:
        if len(shards) < 1:
            raise InvalidParameterError("need at least one site")
        if topology not in ("star", "tree", "chain"):
            raise InvalidParameterError(
                f"unknown topology {topology!r}; use star, tree, or chain"
            )
        self.topology = topology
        self.sites: Dict[int, Site] = {}
        for i, shard in enumerate(shards):
            self.sites[i] = Site(
                site_id=i,
                data=np.asarray(shard),
                parent=self._parent_of(i, len(shards)),
            )
        for site in self.sites.values():
            if site.parent is not None:
                self.sites[site.parent].children.append(site.site_id)
        self.words_sent = 0
        self.messages_sent = 0

    def _parent_of(self, i: int, count: int) -> Optional[int]:
        if i == 0:
            return None
        if self.topology == "star":
            return 0
        if self.topology == "chain":
            return i - 1
        return (i - 1) // 2  # binary tree, root at 0

    @property
    def root(self) -> Site:
        return self.sites[0]

    def total_n(self) -> int:
        """Total elements across all shards."""
        return sum(len(site.data) for site in self.sites.values())

    def union_sorted(self) -> np.ndarray:
        """Ground truth: the sorted union of every site's data."""
        return np.sort(
            np.concatenate([site.data for site in self.sites.values()])
        )

    def send(self, payload_words: int) -> None:
        """Meter one upward message of ``payload_words`` words."""
        if payload_words < 0:
            raise InvalidParameterError("payload_words must be >= 0")
        self.words_sent += payload_words
        self.messages_sent += 1

    def postorder(self) -> List[int]:
        """Site ids with children before parents (aggregation order)."""
        order: List[int] = []
        stack = [(0, False)]
        while stack:
            site_id, expanded = stack.pop()
            if expanded:
                order.append(site_id)
                continue
            stack.append((site_id, True))
            for child in self.sites[site_id].children:
                stack.append((child, False))
        return order

    def depth(self) -> int:
        """Longest root-to-leaf path (merge layers a summary crosses)."""
        best = 0
        for site in self.sites.values():
            d = 0
            cursor = site
            while cursor.parent is not None:
                cursor = self.sites[cursor.parent]
                d += 1
            best = max(best, d)
        return best


def make_network(
    n: int,
    sites: int,
    topology: str = "tree",
    universe_log2: int = 16,
    seed: Optional[int] = None,
    skew: float = 0.0,
) -> AggregationNetwork:
    """Build a network with ``n`` values spread over ``sites`` shards.

    Args:
        skew: 0 gives every site an iid uniform shard; > 0 gives each
            site its own value neighborhood (site i sees mostly values
            near ``i / sites`` of the universe) — the realistic sensor
            case where shards are *not* exchangeable.
    """
    if sites < 1 or n < sites:
        raise InvalidParameterError(
            f"need n >= sites >= 1, got n={n!r} sites={sites!r}"
        )
    rng = make_rng(seed)
    universe = 1 << universe_log2
    per = [n // sites + (1 if i < n % sites else 0) for i in range(sites)]
    shards = []
    for i, size in enumerate(per):
        if skew <= 0:
            shard = rng.integers(0, universe, size=size, dtype=np.int64)
        else:
            center = (i + 0.5) / sites
            spread = max(0.02, 1.0 - skew)
            unit = np.clip(
                rng.normal(center, spread / 2, size=size), 0, 1 - 1e-12
            )
            shard = (unit * universe).astype(np.int64)
        shards.append(shard)
    return AggregationNetwork(shards, topology=topology)
