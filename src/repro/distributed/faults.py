"""Seeded, deterministic fault injection for the aggregation network.

The sensor-network setting the paper's distributed protocols come from
(q-digest [26], Huang et al. [17]) is exactly the setting where messages
*do* get lost: radios drop packets, payloads arrive bit-flipped, nodes
die mid-round.  A :class:`FaultPlan` describes such an environment as
data — drop / duplication / corruption rates and a site-crash schedule —
and a :class:`FaultInjector` turns it into per-message decisions.

The same machinery doubles as the *process-level* chaos vocabulary for
the durable ingest stack (:mod:`repro.durability`): ``kill_worker_at``
SIGKILLs a shard worker after a fixed number of chunks, ``stall_worker``
freezes one long enough to trip the supervisor's hang detector, and
``truncate_wal`` / ``corrupt_checkpoint`` damage the on-disk store
before recovery runs.  Fault *application* must route through a plan —
the replint REP007 rule flags any ``os.kill`` / ``terminate()`` call
that does not.

Determinism is the design center: every decision is a pure function of
``(plan.seed, src, dst, seq, attempt)``, derived by hashing those
coordinates through a SplitMix64 mixer rather than by drawing from a
shared stateful RNG.  Two runs of a protocol with the same seed and the
same plan therefore fault in exactly the same places regardless of
iteration order — which is what makes faulty runs reproducible, testable,
and bisectable.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Tuple

from repro.core.errors import InvalidParameterError

_MASK64 = (1 << 64) - 1
#: SplitMix64 increment (golden-ratio constant).
_GAMMA = 0x9E3779B97F4A7C15


def _splitmix64(x: int) -> int:
    """One SplitMix64 scrambling round (Steele et al.)."""
    x = (x + _GAMMA) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


def _mix(*parts: int) -> int:
    """Hash a tuple of non-negative ints into a well-mixed 64-bit value."""
    x = _GAMMA
    for part in parts:
        x = _splitmix64((x ^ (part & _MASK64)) & _MASK64)
    return x


def _unit(h: int) -> float:
    """Map a 64-bit hash to a uniform float in [0, 1)."""
    return (h >> 11) * (2.0 ** -53)


def _check_rate(name: str, rate: float) -> None:
    if not (0.0 <= rate <= 1.0):
        raise InvalidParameterError(
            f"{name} must be in [0, 1], got {rate!r}"
        )


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """A declarative description of the faults a protocol run must survive.

    Args:
        seed: root of all fault randomness; same seed => same faults.
        drop_rate: probability a message transmission attempt vanishes.
        duplicate_rate: probability a delivered message arrives twice
            (the at-least-once case the receiver must dedup).
        corrupt_rate: probability a delivered payload arrives bit-flipped
            (caught by the snapshot checksum, triggering a retransmit).
        crash_sites: site ids dead for the whole run.
        crash_at_step: map ``site_id -> k``: the site completes ``k``
            sends and then dies (``k = 0`` equals listing it in
            ``crash_sites``).
        max_retries: retransmission attempts after the first send before
            the sender gives up on an edge.
        backoff_base: simulated-clock delay before the first retry.
        backoff_factor: multiplier applied to the delay per further retry
            (exponential backoff).
        kill_worker_at: map ``worker_id -> k``: the ingest worker process
            SIGKILLs itself after durably applying ``k`` chunks (the
            process-level analogue of ``crash_at_step``).
        stall_worker: map ``worker_id -> seconds``: the worker freezes
            that long before acknowledging its next chunk, so the
            supervisor's hang detector (not its death detector) must
            fire.
        truncate_wal: map ``store_id -> bytes``: chop that many bytes off
            the final WAL segment of the store before recovery runs — a
            simulated torn write.
        corrupt_checkpoint: store ids whose *newest* checkpoint file gets
            a deterministic one-bit flip before recovery runs, forcing
            the fallback to an older checkpoint plus a longer replay.
        repeat_worker_faults: by default ``kill_worker_at`` and
            ``stall_worker`` fire only on a worker's first incarnation,
            so a restarted worker can finish its replay; set True to
            fault every incarnation (to exhaust a retry budget).
    """

    seed: int = 0
    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    corrupt_rate: float = 0.0
    crash_sites: Tuple[int, ...] = ()
    crash_at_step: Mapping[int, int] = dataclasses.field(
        default_factory=dict
    )
    max_retries: int = 8
    backoff_base: float = 1.0
    backoff_factor: float = 2.0
    kill_worker_at: Mapping[int, int] = dataclasses.field(
        default_factory=dict
    )
    stall_worker: Mapping[int, float] = dataclasses.field(
        default_factory=dict
    )
    truncate_wal: Mapping[int, int] = dataclasses.field(
        default_factory=dict
    )
    corrupt_checkpoint: Tuple[int, ...] = ()
    repeat_worker_faults: bool = False

    def __post_init__(self) -> None:
        _check_rate("drop_rate", self.drop_rate)
        _check_rate("duplicate_rate", self.duplicate_rate)
        _check_rate("corrupt_rate", self.corrupt_rate)
        if self.max_retries < 0:
            raise InvalidParameterError(
                f"max_retries must be >= 0, got {self.max_retries!r}"
            )
        if self.backoff_base < 0 or self.backoff_factor < 1.0:
            raise InvalidParameterError(
                "backoff_base must be >= 0 and backoff_factor >= 1"
            )
        for worker, chunks in dict(self.kill_worker_at).items():
            if chunks < 0:
                raise InvalidParameterError(
                    f"kill_worker_at[{worker}] must be >= 0, got {chunks!r}"
                )
        for worker, seconds in dict(self.stall_worker).items():
            if seconds < 0:
                raise InvalidParameterError(
                    f"stall_worker[{worker}] must be >= 0, got {seconds!r}"
                )
        for store, nbytes in dict(self.truncate_wal).items():
            if nbytes < 1:
                raise InvalidParameterError(
                    f"truncate_wal[{store}] must be >= 1, got {nbytes!r}"
                )
        # Normalize the collections so equal plans hash/compare equal.
        object.__setattr__(
            self, "crash_sites", tuple(sorted(set(self.crash_sites)))
        )
        object.__setattr__(
            self, "crash_at_step", dict(self.crash_at_step)
        )
        object.__setattr__(
            self, "kill_worker_at", dict(self.kill_worker_at)
        )
        object.__setattr__(
            self, "stall_worker", dict(self.stall_worker)
        )
        object.__setattr__(
            self, "truncate_wal", dict(self.truncate_wal)
        )
        object.__setattr__(
            self,
            "corrupt_checkpoint",
            tuple(sorted(set(self.corrupt_checkpoint))),
        )

    @classmethod
    def lossless(cls, seed: int = 0) -> "FaultPlan":
        """A plan that injects nothing (useful as an explicit baseline)."""
        return cls(seed=seed)

    def is_lossless(self) -> bool:
        """True when this plan can never perturb a run."""
        return (
            self.drop_rate == 0.0
            and self.duplicate_rate == 0.0
            and self.corrupt_rate == 0.0
            and not self.crash_sites
            and not self.crash_at_step
            and not self.kill_worker_at
            and not self.stall_worker
            and not self.truncate_wal
            and not self.corrupt_checkpoint
        )


@dataclasses.dataclass(frozen=True)
class FaultDecision:
    """The injector's verdict for one transmission attempt."""

    drop: bool = False
    corrupt: bool = False
    duplicate: bool = False


class FaultInjector:
    """Turns a :class:`FaultPlan` into deterministic per-message faults.

    The network's reliable transport consults :meth:`decide` on every
    transmission attempt and :meth:`site_crashed` before letting a site
    act.  All answers are pure functions of the plan seed and the message
    coordinates, so a run is reproducible from ``(protocol seed, plan)``
    alone.
    """

    def __init__(self, plan: FaultPlan) -> None:
        if not isinstance(plan, FaultPlan):
            raise InvalidParameterError(
                f"expected a FaultPlan, got {type(plan).__name__}"
            )
        self.plan = plan
        self._crashed: FrozenSet[int] = frozenset(plan.crash_sites)
        self._crash_step: Dict[int, int] = dict(plan.crash_at_step)

    def site_crashed(self, site_id: int, sends_completed: int = 0) -> bool:
        """Whether ``site_id`` is dead after completing that many sends."""
        if site_id in self._crashed:
            return True
        step = self._crash_step.get(site_id)
        return step is not None and sends_completed >= step

    def crashed_sites(self, site_ids: Iterable[int]) -> FrozenSet[int]:
        """The subset of ``site_ids`` dead from the start of a run."""
        return frozenset(
            sid for sid in site_ids if self.site_crashed(sid, 0)
        )

    def decide(
        self, src: int, dst: int, seq: int, attempt: int
    ) -> FaultDecision:
        """The fate of attempt ``attempt`` of message ``seq`` on an edge."""
        plan = self.plan
        base = _mix(plan.seed, src, dst, seq, attempt)
        return FaultDecision(
            drop=_unit(_mix(base, 1)) < plan.drop_rate,
            corrupt=_unit(_mix(base, 2)) < plan.corrupt_rate,
            duplicate=_unit(_mix(base, 3)) < plan.duplicate_rate,
        )

    def corrupt_blob(
        self,
        blob: bytes,
        src: int = 0,
        dst: int = 0,
        seq: int = 0,
        attempt: int = 0,
        bit: Optional[int] = None,
    ) -> bytes:
        """Flip one bit of ``blob`` (deterministically chosen, or ``bit``).

        A single flipped bit is the adversary's *best* case against a
        CRC32 envelope — any one-bit error is guaranteed detectable — so
        this is also what the detection tests inject.
        """
        if not blob:
            return blob
        if bit is None:
            bit = _mix(self.plan.seed, src, dst, seq, attempt, 4) % (
                len(blob) * 8
            )
        if not (0 <= bit < len(blob) * 8):
            raise InvalidParameterError(
                f"bit index {bit!r} outside payload of {len(blob)} bytes"
            )
        mutated = bytearray(blob)
        mutated[bit // 8] ^= 1 << (bit % 8)
        return bytes(mutated)

    def backoff_delay(self, attempt: int) -> float:
        """Simulated delay before retry number ``attempt`` (1-based)."""
        plan = self.plan
        return plan.backoff_base * plan.backoff_factor ** max(
            0, attempt - 1
        )

    # -- process-level (supervised ingest) faults -----------------------

    def _worker_faults_active(self, incarnation: int) -> bool:
        return incarnation == 0 or self.plan.repeat_worker_faults

    def kill_after_chunks(
        self, worker_id: int, incarnation: int = 0
    ) -> Optional[int]:
        """Chunks this worker incarnation applies before SIGKILLing itself.

        None means the worker is not scheduled to die.  Incarnations
        after the first are spared unless ``repeat_worker_faults`` is
        set, so a restarted worker can complete its WAL replay.
        """
        if not self._worker_faults_active(incarnation):
            return None
        return self.plan.kill_worker_at.get(worker_id)

    def stall_seconds(
        self, worker_id: int, incarnation: int = 0
    ) -> float:
        """Seconds this worker incarnation freezes before its next ack."""
        if not self._worker_faults_active(incarnation):
            return 0.0
        return self.plan.stall_worker.get(worker_id, 0.0)

    # -- storage (durable store) faults ---------------------------------

    def wal_truncate_bytes(self, store_id: int) -> int:
        """Bytes to chop off the store's final WAL segment (0: none)."""
        return self.plan.truncate_wal.get(store_id, 0)

    def corrupts_checkpoint(self, store_id: int) -> bool:
        """Whether the store's newest checkpoint gets a bit flipped."""
        return store_id in self.plan.corrupt_checkpoint
