"""Stream and data-set generators for experiments and examples."""

from repro.streams.datasets import (
    MPCAT_UNIVERSE,
    MPCAT_UNIVERSE_LOG2,
    synthetic_lidar,
    synthetic_mpcat_obs,
)
from repro.streams.generators import (
    chunked_sorted_stream,
    normal_stream,
    sorted_stream,
    uniform_stream,
    zipf_stream,
)
from repro.streams.updates import (
    adversarial_teardown,
    churn_stream,
    insert_only,
    remaining_values,
    validate_updates,
)

__all__ = [
    "MPCAT_UNIVERSE",
    "MPCAT_UNIVERSE_LOG2",
    "adversarial_teardown",
    "chunked_sorted_stream",
    "churn_stream",
    "insert_only",
    "normal_stream",
    "remaining_values",
    "sorted_stream",
    "synthetic_lidar",
    "synthetic_mpcat_obs",
    "uniform_stream",
    "validate_updates",
    "zipf_stream",
]
