"""Synthetic stream generators for the paper's experiments (Section 4.1.1).

The paper's synthetic suite varies four data characteristics:

* **size** — stream length ``n``;
* **universe** — elements are ints in ``[0, 2**universe_log2)``;
* **distribution** — uniform, or normal with varying sigma (skewness in
  the paper's sense: smaller sigma = more concentrated = more skew), plus
  a Zipf generator for heavy-tail experiments;
* **order** — random, sorted, reverse-sorted, or "chunked" (sorted runs
  of random lengths, the arrival pattern of the MPCAT-OBS archive).

Every generator returns an ``np.int64`` array — the whole library treats
streams as value sequences, so materializing keeps experiments fast and
reproducible.  Generators take an explicit seed; the same seed always
yields the same stream.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.errors import InvalidParameterError
from repro.sketches.hashing import make_rng


def _validate(n: int, universe_log2: int) -> None:
    if n < 0:
        raise InvalidParameterError(f"n must be >= 0, got {n!r}")
    if not (1 <= universe_log2 <= 63):
        raise InvalidParameterError(
            f"universe_log2 must be in [1, 63], got {universe_log2!r}"
        )


def uniform_stream(
    n: int, universe_log2: int = 32, seed: Optional[int] = None
) -> np.ndarray:
    """``n`` ints uniform over ``[0, 2**universe_log2)``, random order."""
    _validate(n, universe_log2)
    rng = make_rng(seed)
    return rng.integers(0, 1 << universe_log2, size=n, dtype=np.int64)


def normal_stream(
    n: int,
    universe_log2: int = 32,
    sigma: float = 0.15,
    seed: Optional[int] = None,
) -> np.ndarray:
    """Normal values mapped onto the integer universe.

    Draws from ``N(0.5, sigma)`` on the unit interval (clipped), then
    scales to ``[0, 2**universe_log2)`` — the paper's normal data sets
    with their sigma-controlled skewness (Figs. 6, 11, 12 use sigma in
    {0.05, 0.15, 0.25}).
    """
    _validate(n, universe_log2)
    if sigma <= 0:
        raise InvalidParameterError(f"sigma must be > 0, got {sigma!r}")
    rng = make_rng(seed)
    unit = np.clip(rng.normal(0.5, sigma, size=n), 0.0, 1.0 - 1e-12)
    return (unit * (1 << universe_log2)).astype(np.int64)


def zipf_stream(
    n: int,
    universe_log2: int = 32,
    alpha: float = 1.2,
    seed: Optional[int] = None,
) -> np.ndarray:
    """Heavy-tailed (Zipf) values clipped into the universe.

    Not in the paper's original suite; included because heavy duplicate
    mass exercises the duplicate-handling paths of every algorithm.
    """
    _validate(n, universe_log2)
    if alpha <= 1.0:
        raise InvalidParameterError(f"alpha must be > 1, got {alpha!r}")
    rng = make_rng(seed)
    draws = rng.zipf(alpha, size=n)
    return np.minimum(draws - 1, (1 << universe_log2) - 1).astype(np.int64)


def sorted_stream(
    n: int,
    universe_log2: int = 32,
    seed: Optional[int] = None,
    descending: bool = False,
) -> np.ndarray:
    """Uniform values arriving in fully sorted order (Fig. 8)."""
    data = np.sort(uniform_stream(n, universe_log2, seed))
    return data[::-1].copy() if descending else data


def chunked_sorted_stream(
    n: int,
    universe_log2: int = 32,
    mean_chunk: int = 1000,
    seed: Optional[int] = None,
) -> np.ndarray:
    """Random values arriving in sorted runs of geometric random lengths.

    Models the MPCAT-OBS arrival pattern: "chunks of ordered data of
    various lengths" from observation sessions.
    """
    _validate(n, universe_log2)
    if mean_chunk < 1:
        raise InvalidParameterError(
            f"mean_chunk must be >= 1, got {mean_chunk!r}"
        )
    rng = make_rng(seed)
    data = rng.integers(0, 1 << universe_log2, size=n, dtype=np.int64)
    pos = 0
    while pos < n:
        length = int(rng.geometric(1.0 / mean_chunk))
        chunk = data[pos : pos + length]
        chunk.sort()
        pos += length
    return data
