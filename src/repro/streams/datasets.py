"""Synthetic stand-ins for the paper's two real data sets (Section 4.1.1).

The originals are not redistributable and this environment has no network,
so we build synthetic equivalents that preserve the characteristics the
paper calls out; DESIGN.md documents the substitution.

* **MPCAT-OBS** — 87.7M minor-planet right ascensions, integers in
  ``[0, 8 639 999]`` (time-of-day in tenths of a second of arc).  Fig. 4
  shows a strongly bimodal value distribution, and values arrive "randomly
  overall, but consist of chunks of ordered data of various lengths"
  (observatories trace one object per session).  ``synthetic_mpcat_obs``
  reproduces the bimodal mixture, the ~2**24 universe, and the
  chunked-sorted arrival order.

* **Neuse River LIDAR** — ~100M terrain elevation points.
  ``synthetic_lidar`` mixes a few terrain "plateaus" (normal components at
  different elevations) and emits them with spatial correlation: a random
  walk over components, so nearby stream positions come from nearby
  terrain, like a scan line does.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.errors import InvalidParameterError
from repro.sketches.hashing import make_rng

#: Universe of the real MPCAT-OBS values (right ascensions).
MPCAT_UNIVERSE = 8_640_000
#: Smallest power-of-two universe containing MPCAT values (2**24).
MPCAT_UNIVERSE_LOG2 = 24


def synthetic_mpcat_obs(
    n: int, seed: Optional[int] = None, mean_chunk: int = 500
) -> np.ndarray:
    """A synthetic MPCAT-OBS-like stream of ``n`` right ascensions.

    A bimodal mixture (two broad humps, as in Fig. 4) over
    ``[0, 8_640_000)``, emitted in sorted chunks of geometric random
    lengths.  Values fit in ``MPCAT_UNIVERSE_LOG2`` = 24 bits.
    """
    if n < 0:
        raise InvalidParameterError(f"n must be >= 0, got {n!r}")
    rng = make_rng(seed)
    # Mixture resembling the paper's Fig. 4: two humps of unequal mass
    # plus a uniform floor (observations cover the whole sky thinly).
    comps = rng.choice(3, size=n, p=[0.45, 0.4, 0.15])
    unit = np.empty(n, dtype=np.float64)
    hump1 = comps == 0
    hump2 = comps == 1
    floor = comps == 2
    unit[hump1] = rng.normal(0.25, 0.10, size=int(hump1.sum()))
    unit[hump2] = rng.normal(0.72, 0.12, size=int(hump2.sum()))
    unit[floor] = rng.uniform(0.0, 1.0, size=int(floor.sum()))
    unit = np.clip(unit, 0.0, 1.0 - 1e-12)
    data = (unit * MPCAT_UNIVERSE).astype(np.int64)
    # Chunked-sorted arrival: one observing session traces one object.
    pos = 0
    while pos < n:
        length = int(rng.geometric(1.0 / mean_chunk))
        chunk = data[pos : pos + length]
        chunk.sort()
        pos += length
    return data


def synthetic_lidar(
    n: int, seed: Optional[int] = None, universe_log2: int = 20
) -> np.ndarray:
    """A synthetic Neuse-River-LIDAR-like elevation stream.

    Terrain is modeled as 6 elevation plateaus (normal components);
    arrival follows a random walk over plateaus so consecutive points are
    spatially (hence value-) correlated, as in a LIDAR scan.
    """
    if n < 0:
        raise InvalidParameterError(f"n must be >= 0, got {n!r}")
    rng = make_rng(seed)
    centers = np.array([0.12, 0.25, 0.38, 0.55, 0.7, 0.85])
    spreads = np.array([0.02, 0.04, 0.03, 0.05, 0.03, 0.02])
    # Random walk over plateau indices with sticky transitions.
    comp = np.empty(n, dtype=np.int64)
    state = int(rng.integers(0, len(centers)))
    steps = rng.random(n)
    jumps = rng.integers(-1, 2, size=n)
    for i in range(n):
        if steps[i] < 0.002:  # occasional jump to a new scan area
            state = int(rng.integers(0, len(centers)))
        elif steps[i] < 0.02:
            state = int(np.clip(state + jumps[i], 0, len(centers) - 1))
        comp[i] = state
    unit = rng.normal(centers[comp], spreads[comp])
    unit = np.clip(unit, 0.0, 1.0 - 1e-12)
    return (unit * (1 << universe_log2)).astype(np.int64)
