"""Turnstile update streams: interleaved insertions and deletions.

The turnstile model (Section 1.1) only allows deleting elements that are
currently present — multiplicities never go negative.  These helpers
generate and validate such well-formed update sequences.  (Section 4.3
notes that turnstile sketches behave identically whether deletions are
explicit or the deleted elements were never inserted; benches exploit
that, but the example applications and the correctness tests exercise
real deletions through these streams.)
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Iterator, List, Optional, Tuple

import numpy as np

from repro.core.errors import InvalidParameterError, NegativeFrequencyError
from repro.sketches.hashing import make_rng

Update = Tuple[int, int]  # (value, +1 or -1)


def insert_only(values: Iterable[int]) -> Iterator[Update]:
    """Wrap a plain value stream as an update stream of insertions."""
    for value in values:
        yield int(value), 1


def churn_stream(
    n_ops: int,
    universe_log2: int = 16,
    delete_fraction: float = 0.3,
    seed: Optional[int] = None,
) -> List[Update]:
    """A random well-formed update stream with the given deletion rate.

    Each operation is a deletion of a uniformly chosen *live* element with
    probability ``delete_fraction`` (when any are live), otherwise an
    insertion of a uniform universe element.

    Returns the materialized list so tests can replay it.
    """
    if not (0.0 <= delete_fraction < 1.0):
        raise InvalidParameterError(
            f"delete_fraction must be in [0, 1), got {delete_fraction!r}"
        )
    rng = make_rng(seed)
    live: List[int] = []
    ops: List[Update] = []
    for _ in range(n_ops):
        if live and rng.random() < delete_fraction:
            idx = int(rng.integers(0, len(live)))
            live[idx], live[-1] = live[-1], live[idx]
            value = live.pop()
            ops.append((value, -1))
        else:
            value = int(rng.integers(0, 1 << universe_log2))
            live.append(value)
            ops.append((value, 1))
    return ops


def adversarial_teardown(
    n: int, universe_log2: int = 16, survivors: int = 1,
    seed: Optional[int] = None,
) -> List[Update]:
    """The lower-bound stream of Section 1.2.2: insert ``n`` elements,
    then delete all but ``survivors`` of them.

    This is the pattern that defeats every comparison-based algorithm;
    fixed-universe sketches must still answer correctly about the
    survivors.
    """
    if survivors < 0 or survivors > n:
        raise InvalidParameterError(
            f"survivors must be in [0, n], got {survivors!r}"
        )
    rng = make_rng(seed)
    values = rng.integers(0, 1 << universe_log2, size=n, dtype=np.int64)
    ops: List[Update] = [(int(v), 1) for v in values]
    doomed = values[survivors:] if survivors else values
    order = rng.permutation(len(doomed))
    ops.extend((int(doomed[i]), -1) for i in order)
    return ops


def validate_updates(updates: Iterable[Update]) -> Counter:
    """Check well-formedness; returns the final multiplicity Counter.

    Raises:
        NegativeFrequencyError: on the first deletion of an absent element.
        InvalidParameterError: on a delta other than +1/-1.
    """
    counts: Counter = Counter()
    for i, (value, delta) in enumerate(updates):
        if delta == 1:
            counts[value] += 1
        elif delta == -1:
            if counts[value] <= 0:
                raise NegativeFrequencyError(
                    f"update {i}: deleting absent element {value!r}"
                )
            counts[value] -= 1
        else:
            raise InvalidParameterError(
                f"update {i}: delta must be +1 or -1, got {delta!r}"
            )
    return counts


def remaining_values(updates: Iterable[Update]) -> np.ndarray:
    """The sorted multiset of values remaining after all updates."""
    counts = validate_updates(updates)
    out: List[int] = []
    for value, mult in counts.items():
        out.extend([value] * mult)
    return np.sort(np.asarray(out, dtype=np.int64))
