"""Checkpointable summaries: versioned, checksummed snapshot envelopes.

The mergeable-summary model assumes summaries move between machines — to
be checkpointed, shipped to an aggregator, or replayed after a crash.  On
a real network a payload can arrive bit-flipped or stale, and a summary
restored from such bytes would answer *silently wrong* quantiles.  This
module makes that impossible: every snapshot is wrapped in an envelope
whose CRC32 covers the type tag and the entire payload, and every restore
re-checks the summary's structural invariants before handing it back.

Envelope layout (all integers little-endian)::

    offset  size  field
    0       4     magic  b"RQSS"
    4       2     format version (currently 1)
    6       4     CRC32 over everything from offset 10 to the end
    10      2     length of the type tag
    12      t     type tag (utf-8 registry key; "payload" for raw data)
    12+t    ...   pickled state

A CRC32 mismatch, a truncated blob, an unknown type tag, or a restored
summary failing :meth:`validate` all raise
:class:`~repro.core.errors.CorruptSummaryError` — never a wrong answer.

Summary classes opt in with the :func:`snapshottable` class decorator,
which requires a ``validate()`` method; :func:`snapshot_registry` lists
the participants (used by the round-trip property tests).
"""

from __future__ import annotations

import pickle
import struct
import zlib
from typing import Callable, Dict, NamedTuple, Tuple

from repro.core.errors import CorruptSummaryError, InvalidParameterError

#: Envelope magic bytes ("Repro Quantile Summary Snapshot").
MAGIC = b"RQSS"

#: Current envelope format version.
FORMAT_VERSION = 1

#: Reserved type tag for raw (non-summary) payloads.
PAYLOAD_TAG = "payload"

_HEADER = struct.Struct("<4sHIH")

_SNAPSHOT_REGISTRY: Dict[str, type] = {}


def snapshottable(key: str) -> Callable[[type], type]:
    """Class decorator registering a summary type for snapshot/restore.

    Args:
        key: stable type tag written into the envelope (lowercase).

    The class must define a ``validate()`` method that raises
    :class:`CorruptSummaryError` when its structural invariants do not
    hold; :func:`restore` calls it on every restored instance.
    """
    key = key.lower()
    if key == PAYLOAD_TAG:
        raise InvalidParameterError(
            f"type tag {PAYLOAD_TAG!r} is reserved for raw payloads"
        )

    def decorator(cls: type) -> type:
        if not callable(getattr(cls, "validate", None)):
            raise InvalidParameterError(
                f"{cls.__name__} must define validate() to be snapshottable"
            )
        existing = _SNAPSHOT_REGISTRY.get(key)
        if existing is not None and existing is not cls:
            raise InvalidParameterError(
                f"snapshot tag {key!r} already registered "
                f"to {existing.__name__}"
            )
        _SNAPSHOT_REGISTRY[key] = cls
        cls.snapshot_tag = key
        return cls

    return decorator


def snapshot_registry() -> Dict[str, type]:
    """The registered checkpointable summary types (tag -> class)."""
    return dict(_SNAPSHOT_REGISTRY)


def _encode(tag: str, body: bytes) -> bytes:
    tag_bytes = tag.encode("utf-8")
    covered = tag_bytes + body
    header = _HEADER.pack(
        MAGIC, FORMAT_VERSION, zlib.crc32(covered), len(tag_bytes)
    )
    return header + covered


def _decode(blob: bytes) -> Tuple[str, bytes]:
    if not isinstance(blob, (bytes, bytearray, memoryview)):
        raise CorruptSummaryError(
            f"snapshot must be bytes, got {type(blob).__name__}"
        )
    blob = bytes(blob)
    if len(blob) < _HEADER.size:
        raise CorruptSummaryError(
            f"snapshot truncated: {len(blob)} bytes < header"
        )
    try:
        magic, version, crc, tag_len = _HEADER.unpack_from(blob)
    except struct.error as exc:
        # Unreachable for the current fixed-size header, but a future
        # format revision must surface as CorruptSummaryError, never as
        # a bare struct.error.
        raise CorruptSummaryError(
            f"snapshot header failed to decode: {exc}"
        ) from exc
    if magic != MAGIC:
        raise CorruptSummaryError(f"bad snapshot magic {magic!r}")
    if version != FORMAT_VERSION:
        raise CorruptSummaryError(
            f"unsupported snapshot format version {version}"
        )
    covered = blob[_HEADER.size:]
    if len(covered) < tag_len:
        raise CorruptSummaryError("snapshot truncated inside type tag")
    if zlib.crc32(covered) != crc:
        raise CorruptSummaryError("snapshot checksum mismatch")
    try:
        tag = covered[:tag_len].decode("utf-8")
    except UnicodeDecodeError as exc:
        raise CorruptSummaryError("snapshot type tag is not utf-8") from exc
    return tag, covered[tag_len:]


class EnvelopeInfo(NamedTuple):
    """Verified header facts about a snapshot envelope (no unpickling)."""

    #: Registry type tag (``"payload"`` for raw payload envelopes).
    tag: str
    #: Envelope format version.
    version: int
    #: CRC32 over the tag and payload, as stored in the header.
    crc32: int
    #: Size of the pickled payload in bytes.
    payload_bytes: int


def envelope_info(blob: bytes) -> EnvelopeInfo:
    """Inspect an envelope's header after verifying its checksum.

    Parses and checksum-verifies the envelope *without* deserializing
    the payload — cheap enough to run on every request.  The serving
    tier uses this to stamp snapshot responses with the tag and CRC (a
    replica can compare CRCs to detect an already-applied envelope
    before paying the restore), and warm-restart logs record the same
    facts.

    Raises:
        CorruptSummaryError: if the envelope is damaged (same contract
            as :func:`restore`, minus the unpickle and validate steps).
    """
    tag, body = _decode(blob)
    _, version, crc, _ = _HEADER.unpack_from(bytes(blob))
    return EnvelopeInfo(tag, version, crc, len(body))


def snapshot(summary) -> bytes:
    """Serialize a registered summary into a checksummed envelope.

    Raises:
        InvalidParameterError: if the summary's type is not registered
            via :func:`snapshottable`.
    """
    tag = getattr(type(summary), "snapshot_tag", None)
    if tag is None or _SNAPSHOT_REGISTRY.get(tag) is not type(summary):
        raise InvalidParameterError(
            f"{type(summary).__name__} is not a snapshottable summary; "
            f"known tags: {sorted(_SNAPSHOT_REGISTRY)}"
        )
    return _encode(tag, pickle.dumps(summary, protocol=4))


def restore(blob: bytes, validate: bool = True):
    """Rebuild a summary from :func:`snapshot` output, verifying integrity.

    The envelope checksum is verified *before* unpickling (corrupted
    bytes are never deserialized), the type tag must name a registered
    class, the restored object must be an instance of it, and — with
    ``validate=True``, the default every checkpoint load uses — its
    ``validate()`` structural self-check must pass.  ``validate=False``
    skips only that last invariant sweep (for hot paths re-restoring a
    blob this process itself just produced); checksum, header, and type
    checks always run.

    Raises:
        CorruptSummaryError: on any checksum, header, type, or invariant
            failure — a silently wrong summary is never returned.
    """
    tag, body = _decode(blob)
    cls = _SNAPSHOT_REGISTRY.get(tag)
    if cls is None:
        raise CorruptSummaryError(f"unknown snapshot type tag {tag!r}")
    try:
        summary = pickle.loads(body)
    except Exception as exc:  # checksum passed but pickle is unusable
        raise CorruptSummaryError(
            f"snapshot payload for {tag!r} failed to deserialize: {exc}"
        ) from exc
    if not isinstance(summary, cls):
        raise CorruptSummaryError(
            f"snapshot tagged {tag!r} deserialized to "
            f"{type(summary).__name__}, expected {cls.__name__}"
        )
    if validate:
        summary.validate()
    return summary


def encode_payload(obj) -> bytes:
    """Wrap an arbitrary picklable object in a checksummed envelope.

    Used by the distributed transport for non-summary payloads (e.g. the
    sample arrays of the sampling protocol) so corruption on the wire is
    detected the same way summary corruption is.
    """
    return _encode(PAYLOAD_TAG, pickle.dumps(obj, protocol=4))


def decode_payload(blob: bytes):
    """Unwrap :func:`encode_payload` output, verifying the checksum.

    Raises:
        CorruptSummaryError: if the envelope is damaged or is not a raw
            payload envelope.
    """
    tag, body = _decode(blob)
    if tag != PAYLOAD_TAG:
        raise CorruptSummaryError(
            f"expected a raw payload envelope, got type tag {tag!r}"
        )
    try:
        return pickle.loads(body)
    except Exception as exc:
        raise CorruptSummaryError(
            f"payload failed to deserialize: {exc}"
        ) from exc
