"""Exact (non-streaming) quantile computation.

This is the ground truth every experiment measures against: it stores the
whole stream and answers rank and quantile queries exactly by sorting.  It
also supports deletions, so it doubles as the turnstile ground truth.

Ranks of duplicated elements are reported as an interval ``[lo, hi]``
(``lo`` = number of elements strictly smaller, ``hi`` = number of elements
smaller-or-equal).  Section 4.1.2 of the paper resolves ambiguity in the
algorithms' favor by measuring distance to the nearer interval endpoint;
:mod:`repro.evaluation.metrics` implements that rule on top of this class.
"""

from __future__ import annotations

import bisect
from collections import Counter
from typing import Iterable, List, Sequence, Tuple

from repro.core.base import QuantileSketch, validate_phi
from repro.core.errors import EmptySummaryError, NegativeFrequencyError


class ExactQuantiles(QuantileSketch):
    """Store-everything baseline with exact answers.

    Elements are buffered and sorted lazily: updates are O(1) amortized and
    the first query after a batch of updates pays one sort.
    """

    name = "Exact"
    deterministic = True
    comparison_based = True

    def __init__(self, values: Iterable = ()) -> None:
        self._sorted: List = []
        self._pending: List = []
        self._deleted: Counter = Counter()
        self._n = 0
        self.extend(values)

    @property
    def n(self) -> int:
        return self._n

    def update(self, value) -> None:
        self._pending.append(value)
        self._n += 1

    def extend(self, values: Iterable) -> None:
        before = len(self._pending)
        self._pending.extend(values)
        self._n += len(self._pending) - before

    def delete(self, value) -> None:
        """Remove one occurrence of ``value``.

        Raises:
            NegativeFrequencyError: if ``value`` is not currently present.
        """
        self._flush()
        i = bisect.bisect_left(self._sorted, value)
        if i >= len(self._sorted) or self._sorted[i] != value:
            raise NegativeFrequencyError(
                f"cannot delete {value!r}: not present"
            )
        del self._sorted[i]
        self._n -= 1

    def _flush(self) -> None:
        if self._pending:
            self._sorted.extend(self._pending)
            self._pending.clear()
            self._sorted.sort()

    def values(self) -> Sequence:
        """The current multiset, sorted ascending (a view; do not mutate)."""
        self._flush()
        return self._sorted

    def rank(self, value) -> int:
        """Exact rank: the number of elements strictly smaller than
        ``value``."""
        self._flush()
        return bisect.bisect_left(self._sorted, value)

    def rank_interval(self, value) -> Tuple[int, int]:
        """Exact rank interval ``(lo, hi)`` of ``value``.

        ``lo`` counts elements strictly smaller; ``hi`` counts elements
        smaller-or-equal.  For an element appearing once, ``hi == lo + 1``;
        for an absent element, ``hi == lo``.
        """
        self._flush()
        lo = bisect.bisect_left(self._sorted, value)
        hi = bisect.bisect_right(self._sorted, value)
        return lo, hi

    def query(self, phi: float):
        validate_phi(phi)
        self._flush()
        if not self._sorted:
            raise EmptySummaryError("Exact: cannot query an empty summary")
        target = min(len(self._sorted) - 1, int(phi * len(self._sorted)))
        return self._sorted[target]

    def query_batch(self, phis: Sequence[float]) -> List:
        """One flush/sort shared by every ``phi``; each lookup is O(1)."""
        self._flush()
        return [self.query(phi) for phi in phis]

    def size_words(self) -> int:
        return len(self._sorted) + len(self._pending)
