"""Name-based registry of quantile algorithms.

The experiment harness and the examples construct algorithms by name, so
benchmark configuration stays declarative::

    sk = make_sketch("gk_array", eps=1e-3)
    sk = make_sketch("dcs", eps=1e-3, universe_log2=32, seed=7)

Registration happens at import time via the :func:`register` decorator on
each algorithm class.  ``repro/__init__`` imports every algorithm module,
so the registry is fully populated whenever ``repro`` is imported.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Type

from repro.core.base import QuantileSketch
from repro.core.errors import InvalidParameterError

_REGISTRY: Dict[str, Type[QuantileSketch]] = {}


def register(key: str) -> Callable[[type], type]:
    """Class decorator: register ``cls`` under ``key`` (lowercase)."""
    key = key.lower()

    def decorator(cls: type) -> type:
        if key in _REGISTRY and _REGISTRY[key] is not cls:
            raise InvalidParameterError(
                f"algorithm key {key!r} already registered "
                f"to {_REGISTRY[key].__name__}"
            )
        _REGISTRY[key] = cls
        return cls

    return decorator


def make_sketch(key: str, **kwargs) -> QuantileSketch:
    """Construct a registered algorithm by name.

    Args:
        key: registry name, case-insensitive (see :func:`algorithms`).
        **kwargs: forwarded to the algorithm constructor (``eps`` always;
            fixed-universe algorithms also need ``universe_log2``;
            randomized ones accept ``seed``).

    Raises:
        InvalidParameterError: if ``key`` is unknown.
    """
    cls = get_algorithm(key)
    return cls(**kwargs)


def get_algorithm(key: str) -> Type[QuantileSketch]:
    """Look up a registered algorithm class by name."""
    try:
        return _REGISTRY[key.lower()]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise InvalidParameterError(
            f"unknown algorithm {key!r}; known algorithms: {known}"
        ) from None


def algorithms() -> List[str]:
    """Sorted list of every registered algorithm name."""
    return sorted(_REGISTRY)


def mergeable_algorithms() -> List[str]:
    """Sorted names of every algorithm whose class implements ``merge``.

    The parallel ingest engine and the distributed aggregation protocols
    only work over these (capability flag ``cls.mergeable``; see
    :class:`repro.core.base.QuantileSketch`).
    """
    return sorted(
        k for k, cls in _REGISTRY.items()
        if getattr(cls, "mergeable", False)
    )


def supports_merge(key: str) -> bool:
    """Whether the registered algorithm ``key`` implements ``merge``.

    A registrant that never declares the capability flag (possible for
    classes outside the :class:`~repro.core.base.QuantileSketch`
    hierarchy) counts as unmergeable.

    Raises:
        InvalidParameterError: if ``key`` is unknown.
    """
    return bool(getattr(get_algorithm(key), "mergeable", False))


def merge_shares_seed(key: str) -> bool:
    """Whether shards of algorithm ``key`` must be built from one seed.

    True for the hash-based turnstile sketches (counter addition is only
    linear when both sides evaluate identical hash functions), False for
    comparison-based randomized sketches (independent per-shard coins).

    Raises:
        InvalidParameterError: if ``key`` is unknown.
    """
    return bool(getattr(get_algorithm(key), "merge_shares_seed", False))
