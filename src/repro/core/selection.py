"""Classical selection algorithms — the paper's historical substrate.

The introduction roots streaming quantiles in two classical results, both
implemented here for completeness and as test oracles:

* **Linear-time selection** (Blum–Floyd–Pratt–Rivest–Tarjan 1973, the
  paper's [4]): find the rank-``k`` element of an array in worst-case
  O(n) time via median-of-medians pivoting.

* **Munro–Paterson multi-pass selection** (1980, the paper's [23]): find
  the *exact* rank-``k`` element of a stream using ``p`` passes and
  ``O(n^(1/p))`` memory — the lower bound says this is optimal, which is
  precisely why one-pass algorithms must approximate.  Each pass scans
  the stream keeping a bounded sample of candidates inside the current
  ``(lo, hi)`` bracket and exact counts outside it, narrowing the bracket
  until the candidate set fits in memory.
"""

from __future__ import annotations

import math
from typing import Callable, Iterable, List, Sequence, Tuple

from repro.core.errors import EmptySummaryError, InvalidParameterError


def select(values: Sequence, k: int) -> object:
    """Rank-``k`` element (0-based: ``k`` elements are strictly smaller
    or equal-and-earlier) in worst-case linear time.

    Median-of-medians: groups of 5, recursive pivot choice, three-way
    partition.  Equivalent to ``sorted(values)[k]``.
    """
    n = len(values)
    if not (0 <= k < n):
        raise InvalidParameterError(f"k must be in [0, {n}), got {k!r}")
    return _select(list(values), k)


def _median_of_medians(arr: List) -> object:
    if len(arr) <= 5:
        return sorted(arr)[len(arr) // 2]
    medians = [
        sorted(arr[i : i + 5])[min(2, (len(arr) - i - 1) // 2)]
        for i in range(0, len(arr), 5)
    ]
    return _select(medians, len(medians) // 2)


def _select(arr: List, k: int) -> object:
    while True:
        if len(arr) <= 5:
            return sorted(arr)[k]
        pivot = _median_of_medians(arr)
        less = [x for x in arr if x < pivot]
        equal = [x for x in arr if x == pivot]
        if k < len(less):
            arr = less
        elif k < len(less) + len(equal):
            return pivot
        else:
            k -= len(less) + len(equal)
            arr = [x for x in arr if x > pivot]


class MunroPaterson:
    """Exact rank selection over a re-scannable stream in ``p`` passes.

    The stream is abstracted as a zero-argument callable returning a
    fresh iterator (a file can be re-opened; a generator factory
    re-created).  Memory is bounded by ``memory`` retained elements.

    Each pass scans once, counting elements below the current bracket
    and *uniformly thinning* the in-bracket elements to at most
    ``memory`` retained candidates (keep every ``ceil(b / memory)``-th
    in-bracket element in arrival order, plus the running min/max of the
    bracket).  Retained candidates split the bracket into runs of at most
    ``stride`` elements, so bracketing the target between adjacent
    retained candidates shrinks the in-bracket population by a factor
    ``~memory / 2`` per pass — giving the classic
    ``O(log n / log memory)`` pass bound of [23].
    """

    def __init__(self, stream_factory: Callable[[], Iterable],
                 memory: int) -> None:
        if memory < 4:
            raise InvalidParameterError(
                f"memory must be >= 4, got {memory!r}"
            )
        self._factory = stream_factory
        self.memory = memory
        self.passes_used = 0

    def select(self, k: int):
        """The exact element of 0-based rank ``k`` (duplicates counted)."""
        n = sum(1 for _ in self._factory())
        self.passes_used = 1
        if n == 0:
            raise EmptySummaryError("MunroPaterson: empty stream")
        if not (0 <= k < n):
            raise InvalidParameterError(f"k must be in [0, {n}), got {k!r}")

        lo = hi = None  # bracket (lo, hi]: everything is a candidate
        while True:
            below, inside, candidates = self._scan(lo, hi)
            self.passes_used += 1
            if inside <= self.memory:
                # All in-bracket elements were retained: finish exactly.
                candidates.sort()
                return candidates[k - below]
            found, payload = self._narrow(candidates, k, lo, hi)
            if found:
                return payload
            lo, hi = payload

    def _scan(self, lo, hi) -> Tuple[int, int, List]:
        """One pass: (count below bracket, count inside, thinned sample).

        The sample keeps every ``stride``-th in-bracket element; stride
        doubles whenever the retained list would overflow ``memory``, and
        the list is re-thinned in place — total memory stays bounded.
        """
        below = 0
        inside = 0
        stride = 1
        kept: List = []
        vmin = vmax = None
        for x in self._factory():
            if lo is not None and x <= lo:
                below += 1
                continue
            if hi is not None and x > hi:
                continue
            if vmin is None or x < vmin:
                vmin = x
            if vmax is None or x > vmax:
                vmax = x
            if inside % stride == 0:
                kept.append(x)
                if len(kept) > self.memory:
                    kept = kept[::2]
                    stride *= 2
            inside += 1
        # The bracket's extremes must stay candidates: thinning can drop
        # them, and without the minimum the bracket can never close on a
        # smallest-rank target (and symmetrically for the maximum).  Only
        # needed when thinning happened — an unthinned kept list must
        # remain exactly the in-bracket multiset for the exact finish.
        if stride > 1 and vmin is not None:
            kept.extend([vmin, vmax])
        return below, inside, kept

    def _narrow(self, kept: List, k: int, lo, hi):
        """Bracket the target between retained candidates, or find it.

        Arrival-order thinning leaves candidate ranks unknown, so a
        counting pass computes, for each retained candidate, how many
        stream elements are strictly below it and how many equal it.  If
        rank ``k`` falls inside some candidate's occupancy interval the
        answer is that candidate; otherwise the tightest ``(lo, hi]``
        pair around rank ``k`` becomes the next bracket.  Returns
        ``(True, answer)`` or ``(False, (lo, hi))``.
        """
        import bisect

        kept = sorted(set(kept))
        # Histogram stream elements by candidate slot: strictly-below
        # counts from bisect_left positions, equality counts separately.
        hist = [0] * (len(kept) + 1)
        equal = [0] * len(kept)
        for x in self._factory():
            pos = bisect.bisect_left(kept, x)
            if pos < len(kept) and kept[pos] == x:
                equal[pos] += 1
            else:
                hist[pos] += 1
        self.passes_used += 1
        new_lo, new_hi = lo, hi
        running_below = 0
        for j, candidate in enumerate(kept):
            running_below += hist[j]
            count_lt = running_below  # elements strictly below candidate
            count_le = count_lt + equal[j]
            running_below = count_le
            if count_lt <= k < count_le:
                return True, candidate  # rank k lands on the candidate
            if count_le <= k and (new_lo is None or candidate > new_lo):
                new_lo = candidate
            if count_lt > k and (new_hi is None or candidate < new_hi):
                new_hi = candidate
                break
        if (new_lo, new_hi) == (lo, hi):
            raise InvalidParameterError(
                "bracket failed to narrow; memory too small for stream"
            )
        return False, (new_lo, new_hi)


def exact_median_passes(n: int, memory: int) -> int:
    """The pass bound of [23]: ``O(log n / log memory)`` (informative)."""
    if n <= 1:
        return 1
    if memory < 2:
        raise InvalidParameterError(f"memory must be >= 2, got {memory!r}")
    return max(1, math.ceil(math.log(n) / math.log(memory)))
