"""Core protocols, exceptions, registry, and the exact baseline."""

from repro.core.base import (
    MergeableSketch,
    QuantileSketch,
    SupportsQuantileQueries,
    TurnstileSketch,
    WORD_BYTES,
    validate_eps,
    validate_phi,
    validate_universe_log2,
)
from repro.core.errors import (
    CorruptSummaryError,
    EmptySummaryError,
    InvalidParameterError,
    InvariantViolation,
    MergeError,
    NegativeFrequencyError,
    ReproError,
    SiteUnavailableError,
    UniverseOverflowError,
    UnmergeableSketchError,
)
from repro.core.exact import ExactQuantiles
from repro.core.registry import (
    algorithms,
    get_algorithm,
    make_sketch,
    merge_shares_seed,
    mergeable_algorithms,
    register,
    supports_merge,
)
from repro.core.selection import MunroPaterson, exact_median_passes, select
from repro.core.snapshot import (
    restore,
    snapshot,
    snapshot_registry,
    snapshottable,
)

__all__ = [
    "CorruptSummaryError",
    "EmptySummaryError",
    "ExactQuantiles",
    "InvalidParameterError",
    "InvariantViolation",
    "MergeError",
    "MergeableSketch",
    "MunroPaterson",
    "NegativeFrequencyError",
    "QuantileSketch",
    "ReproError",
    "SiteUnavailableError",
    "SupportsQuantileQueries",
    "TurnstileSketch",
    "UniverseOverflowError",
    "UnmergeableSketchError",
    "WORD_BYTES",
    "algorithms",
    "get_algorithm",
    "make_sketch",
    "merge_shares_seed",
    "mergeable_algorithms",
    "register",
    "supports_merge",
    "restore",
    "select",
    "snapshot",
    "snapshot_registry",
    "snapshottable",
    "exact_median_passes",
    "validate_eps",
    "validate_phi",
    "validate_universe_log2",
]
