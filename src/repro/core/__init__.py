"""Core protocols, exceptions, registry, and the exact baseline."""

from repro.core.base import (
    MergeableSketch,
    QuantileSketch,
    TurnstileSketch,
    WORD_BYTES,
    validate_eps,
    validate_phi,
    validate_universe_log2,
)
from repro.core.errors import (
    EmptySummaryError,
    InvalidParameterError,
    MergeError,
    NegativeFrequencyError,
    ReproError,
    UniverseOverflowError,
)
from repro.core.exact import ExactQuantiles
from repro.core.registry import algorithms, get_algorithm, make_sketch, register
from repro.core.selection import MunroPaterson, exact_median_passes, select

__all__ = [
    "EmptySummaryError",
    "ExactQuantiles",
    "InvalidParameterError",
    "MergeError",
    "MergeableSketch",
    "MunroPaterson",
    "NegativeFrequencyError",
    "QuantileSketch",
    "ReproError",
    "TurnstileSketch",
    "UniverseOverflowError",
    "WORD_BYTES",
    "algorithms",
    "get_algorithm",
    "make_sketch",
    "register",
    "select",
    "exact_median_passes",
    "validate_eps",
    "validate_phi",
    "validate_universe_log2",
]
