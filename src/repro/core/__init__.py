"""Core protocols, exceptions, registry, and the exact baseline."""

from repro.core.base import (
    MergeableSketch,
    QuantileSketch,
    TurnstileSketch,
    WORD_BYTES,
    validate_eps,
    validate_phi,
    validate_universe_log2,
)
from repro.core.errors import (
    CorruptSummaryError,
    EmptySummaryError,
    InvalidParameterError,
    MergeError,
    NegativeFrequencyError,
    ReproError,
    SiteUnavailableError,
    UniverseOverflowError,
)
from repro.core.exact import ExactQuantiles
from repro.core.registry import algorithms, get_algorithm, make_sketch, register
from repro.core.selection import MunroPaterson, exact_median_passes, select
from repro.core.snapshot import (
    restore,
    snapshot,
    snapshot_registry,
    snapshottable,
)

__all__ = [
    "CorruptSummaryError",
    "EmptySummaryError",
    "ExactQuantiles",
    "InvalidParameterError",
    "MergeError",
    "MergeableSketch",
    "MunroPaterson",
    "NegativeFrequencyError",
    "QuantileSketch",
    "ReproError",
    "SiteUnavailableError",
    "TurnstileSketch",
    "UniverseOverflowError",
    "WORD_BYTES",
    "algorithms",
    "get_algorithm",
    "make_sketch",
    "register",
    "restore",
    "select",
    "snapshot",
    "snapshot_registry",
    "snapshottable",
    "exact_median_passes",
    "validate_eps",
    "validate_phi",
    "validate_universe_log2",
]
