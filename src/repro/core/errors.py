"""Exception hierarchy for the ``repro`` library.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch library failures without
catching unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class InvalidParameterError(ReproError, ValueError):
    """A constructor or method argument is outside its legal range.

    Raised, for example, for ``eps`` outside (0, 1), non-positive universe
    sizes, or quantile fractions outside (0, 1).
    """


class EmptySummaryError(ReproError, RuntimeError):
    """A quantile was requested from a summary that has seen no elements."""


class UniverseOverflowError(ReproError, ValueError):
    """An element fell outside the fixed universe ``[0, u)`` of a sketch."""


class NegativeFrequencyError(ReproError, ValueError):
    """A turnstile deletion would drive an element's multiplicity negative.

    The turnstile model (Section 1.1 of the paper) forbids deleting an
    element that is not currently present.  Sketches cannot detect every
    violation cheaply, so this is raised only by the strict update-stream
    helpers in :mod:`repro.streams.updates`.
    """


class MergeError(ReproError, ValueError):
    """Two summaries are incompatible for merging (different parameters)."""
