"""Exception hierarchy for the ``repro`` library.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch library failures without
catching unrelated bugs.

The hierarchy::

    ReproError
    ├── InvalidParameterError (ValueError)    bad constructor/method args
    ├── EmptySummaryError (RuntimeError)      query before any update
    ├── UniverseOverflowError (ValueError)    element outside [0, u)
    ├── NegativeFrequencyError (ValueError)   ill-formed turnstile delete
    ├── MergeError (ValueError)               incompatible summaries
    │   └── UnmergeableSketchError            the algorithm has no merge
    │                                         operation at all
    ├── CorruptSummaryError (ValueError)      checksum/invariant failure on
    │                                         a serialized or merged summary
    ├── InvariantViolation (AssertionError)   structural invariant broken
    │                                         (survives ``python -O``)
    ├── SiteUnavailableError (RuntimeError)   distributed site unreachable
    ├── ParallelIngestError (RuntimeError)    sharded-ingest worker died
    └── DurabilityError (RuntimeError)        WAL/checkpoint store damaged
                                              beyond what recovery repairs
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class InvalidParameterError(ReproError, ValueError):
    """A constructor or method argument is outside its legal range.

    Raised, for example, for ``eps`` outside (0, 1), non-positive universe
    sizes, or quantile fractions outside (0, 1).
    """


class EmptySummaryError(ReproError, RuntimeError):
    """A quantile was requested from a summary that has seen no elements."""


class UniverseOverflowError(ReproError, ValueError):
    """An element fell outside the fixed universe ``[0, u)`` of a sketch."""


class NegativeFrequencyError(ReproError, ValueError):
    """A turnstile deletion would drive an element's multiplicity negative.

    The turnstile model (Section 1.1 of the paper) forbids deleting an
    element that is not currently present.  Sketches cannot detect every
    violation cheaply, so this is raised only by the strict update-stream
    helpers in :mod:`repro.streams.updates`.
    """


class MergeError(ReproError, ValueError):
    """Two summaries are incompatible for merging (different parameters)."""


class UnmergeableSketchError(MergeError):
    """The algorithm does not support merging at all.

    Distinct from its parent :class:`MergeError`, which reports that two
    summaries of a *mergeable* algorithm are parameter-incompatible
    (different ``eps``, universe, or hash seeds).  This subclass means the
    algorithm itself defines no merge operation — check
    ``cls.mergeable`` (see :class:`repro.core.base.QuantileSketch`) or
    :func:`repro.core.registry.mergeable_algorithms` before sharding a
    stream or building an aggregation tree.
    """


class CorruptSummaryError(ReproError, ValueError):
    """A serialized or untrusted summary failed an integrity check.

    Raised by :func:`repro.core.snapshot.restore` when a snapshot's CRC32
    checksum, header, or structural invariants do not hold, and by the
    ``validate()`` self-checks of the checkpointable summaries when their
    internal invariants (GK band/gap conditions, q-digest tree capacity,
    non-negative dyadic counts) are violated — e.g. after merging a
    payload received over an unreliable channel.  A summary that raises
    this error must be discarded; its answers are not trustworthy.
    """


class InvariantViolation(ReproError, AssertionError):
    """A structural invariant of a summary does not hold.

    Raised by the invariant checkers (e.g.
    :func:`repro.cash_register.gk_base.check_gk_invariants`) in place of
    bare ``assert`` statements, so the checks still fire under
    ``python -O`` (which strips asserts).  Deriving from
    :class:`AssertionError` keeps ``pytest.raises(AssertionError)``
    call sites working; deriving from :class:`ReproError` lets callers
    catch every deliberate library failure in one clause.
    """


class SiteUnavailableError(ReproError, RuntimeError):
    """A distributed protocol cannot proceed because a site is unreachable.

    Raised when the *root* (base station) of an aggregation network has
    crashed — without it there is nowhere to assemble an answer.  Crashes
    of non-root sites degrade coverage instead (see
    :func:`repro.distributed.protocols.merge_summaries`).
    """


class ParallelIngestError(ReproError, RuntimeError):
    """The sharded ingest engine lost a worker or its transport.

    Raised by :class:`repro.parallel.engine.ShardedIngestEngine` when a
    worker process dies, reports an exception, or stops draining its
    shared-memory chunk queue.  Carries the worker's formatted traceback
    when one was reported.
    """


class DurabilityError(ReproError, RuntimeError):
    """The durable-ingest store is damaged beyond self-repair.

    Recovery tolerates the faults a crash can cause — a torn tail on the
    final WAL segment, a corrupt newest checkpoint (it falls back to an
    older one), an interrupted prune.  This error marks everything else:
    corruption in the *middle* of the log, a segment with the wrong
    dtype or format version, or a store whose manifest does not match
    the requested algorithm.  See :mod:`repro.durability`.
    """
