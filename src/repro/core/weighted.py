"""Batched quantile extraction from weighted sample snapshots.

The sampling-based summaries (Random, MRL99, KLL) all answer queries the
same way: concatenate their buffers into one weighted sorted sample and
return, for each ``phi``, the stored element whose estimated rank —
the cumulative weight of the elements before it — is closest to
``phi * n``.  The historical formulation is an ``argmin`` over
``|cum - target|`` per query; this module gives the shared vectorized
form used by their ``query_batch`` overrides.

The key observation: every element weight is an integer ``>= 1``, so the
cumulative-weight array is *strictly increasing* and the closest entry to
any target can be found with one ``np.searchsorted`` instead of a full
``argmin`` scan.  Ties (a target exactly halfway between two cumulative
weights) resolve to the earlier element, matching ``np.argmin``'s
first-minimum rule, so answers are bit-identical to the scalar
formulation.  Summaries with fractional (possibly zero) weights — e.g.
the sliding-window summary's expiry-scaled chunks — must NOT use this
path: equal cumulative weights would break the tie rule.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.core.base import validate_phi

#: A weighted part: (sorted sample array, per-element integer weight).
WeightedPart = Tuple[np.ndarray, int]


def flatten_parts(parts: Sequence[WeightedPart]):
    """Merge weighted parts into one value-sorted (values, cum) pair.

    ``cum[i]`` is the cumulative weight strictly before element ``i`` —
    its estimated rank.  Uses a stable mergesort so equal values keep
    their part order, matching the scalar query paths.
    """
    values = np.concatenate([items for items, _ in parts])
    weights = np.concatenate(
        [np.full(len(items), w, dtype=np.float64) for items, w in parts]
    )
    order = np.argsort(values, kind="mergesort")
    values = values[order]
    cum = np.concatenate([[0.0], np.cumsum(weights[order])[:-1]])
    return values, cum


def weighted_query_batch(
    parts: Sequence[WeightedPart], n: int, phis: Sequence[float]
) -> List:
    """Answer every ``phi`` against the weighted snapshot in one pass.

    Equivalent to ``values[argmin(|cum - phi * n|)]`` per query, computed
    with a single vectorized ``searchsorted`` over all targets.  Weights
    must be integers ``>= 1`` (strictly increasing ``cum``).
    """
    targets = np.asarray([validate_phi(phi) for phi in phis]) * n
    if not len(targets):
        return []
    values, cum = flatten_parts(parts)
    pos = np.searchsorted(cum, targets, side="left")
    pos = np.clip(pos, 1, len(cum) - 1)
    # Closest of cum[pos - 1] and cum[pos]; ties go to the earlier
    # element (np.argmin's first-minimum rule).
    left = np.abs(targets - cum[pos - 1])
    right = np.abs(cum[pos] - targets)
    idx = np.where(left <= right, pos - 1, pos)
    return values[idx].tolist()
