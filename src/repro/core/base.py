"""Abstract interfaces shared by every quantile summary in the library.

The paper (Section 1.1) classifies streaming quantile algorithms along
three axes: cash-register vs. turnstile, comparison-based vs. fixed
universe, and deterministic vs. randomized.  These interfaces encode the
first two axes structurally:

* :class:`QuantileSketch` is the cash-register interface: insertions only.
* :class:`TurnstileSketch` extends it with deletions.

Both expose the same query surface — ``rank``, ``query`` (one quantile),
``quantiles`` (many) — together with the space accounting used throughout
the paper's evaluation (4-byte words; see :mod:`repro.evaluation.space`).
"""

from __future__ import annotations

import abc
import math
from typing import Any, Iterable, List, Protocol, Sequence

from repro.core.errors import (
    EmptySummaryError,
    InvalidParameterError,
    UnmergeableSketchError,
)

#: Size, in bytes, of one machine word under the paper's space accounting
#: ("every element from the stream, counter, or pointer consumes 4 bytes").
WORD_BYTES = 4


def validate_eps(eps: float) -> float:
    """Check that ``eps`` is a usable error parameter and return it.

    Raises:
        InvalidParameterError: if ``eps`` is not in the open interval (0, 1).
    """
    if not (0.0 < eps < 1.0):
        raise InvalidParameterError(f"eps must be in (0, 1), got {eps!r}")
    return float(eps)


def validate_phi(phi: float) -> float:
    """Check that ``phi`` is a usable quantile fraction and return it.

    Raises:
        InvalidParameterError: if ``phi`` is not in the closed interval
            [0, 1].  The endpoints are allowed and map to the minimum and
            maximum of the data.
    """
    if not (0.0 <= phi <= 1.0):
        raise InvalidParameterError(f"phi must be in [0, 1], got {phi!r}")
    return float(phi)


def to_element_array(items):
    """Build a 1-D numpy array of stream elements, whatever their type.

    Scalars produce ordinary numeric arrays (fast path).  Sequence-like
    elements (e.g. tuples as composite sort keys) would be coerced into
    a 2-D array by ``np.asarray``, so they fall back to a 1-D object
    array — numpy sorts and searches those with Python comparisons,
    preserving the comparison-model contract.  One-shot iterables
    (generators) are materialized first.
    """
    import numpy as np

    if not hasattr(items, "__len__"):
        items = list(items)
    arr = np.asarray(items)
    if arr.ndim != 1:
        arr = np.empty(len(items), dtype=object)
        arr[:] = items
    return arr


def reject_nan(value):
    """Reject NaN inputs to comparison-based summaries and return value.

    NaN compares false against everything, which silently corrupts any
    order-based structure (tuples land in arbitrary positions and the
    guarantee quietly dies).  ``x != x`` is the cheapest NaN test and is
    False for every well-behaved type.
    """
    if value != value:
        raise InvalidParameterError(
            "NaN cannot be ranked; filter NaNs before summarizing"
        )
    return value


def validate_universe_log2(universe_log2: int) -> int:
    """Check that ``universe_log2`` describes a usable fixed universe.

    The fixed-universe algorithms operate on integers in ``[0, 2**b)``.
    ``b`` must be a positive integer; we cap it at 64 since elements are
    treated as machine integers.
    """
    if not isinstance(universe_log2, int) or isinstance(universe_log2, bool):
        raise InvalidParameterError(
            f"universe_log2 must be an int, got {universe_log2!r}"
        )
    if not (1 <= universe_log2 <= 64):
        raise InvalidParameterError(
            f"universe_log2 must be in [1, 64], got {universe_log2!r}"
        )
    return universe_log2


class SupportsQuantileQueries(Protocol):
    """The read-only query surface shared by summaries and snapshots.

    Evaluation and analysis helpers accept anything with this shape:
    live sketches, exact baselines, and post-processed snapshots all
    qualify without inheriting from :class:`QuantileSketch`.
    """

    @property
    def n(self) -> int: ...

    def rank(self, value: Any) -> float: ...

    def query(self, phi: float) -> Any: ...

    def query_batch(self, phis: Sequence[float]) -> List: ...


class QuantileSketch(abc.ABC):
    """A one-pass summary of a stream supporting approximate quantiles.

    Subclasses promise that, after any prefix of the stream, ``query(phi)``
    returns an element whose rank is within ``eps * n`` of ``phi * n``
    (deterministically, or with the algorithm's stated probability).

    The summary never needs to know the stream length in advance: queries
    may be interleaved with updates at any point.
    """

    #: Human-readable algorithm name, e.g. ``"GKArray"``.  Set by subclass.
    name: str = "abstract"

    #: Whether the error guarantee is deterministic.
    deterministic: bool = False

    #: Whether the algorithm only compares elements (vs. fixed universe).
    comparison_based: bool = False

    #: Whether :meth:`merge` is implemented (the mergeable-summary model).
    #: Set to True by subclasses that override :meth:`merge`; consumers
    #: (the parallel ingest engine, distributed aggregation) check this
    #: flag — or :func:`repro.core.registry.mergeable_algorithms` — before
    #: sharding a stream.
    mergeable: bool = False

    #: Whether two summaries must be built from the *same* ``seed`` to be
    #: merge-compatible.  True for the hash-based turnstile sketches,
    #: whose counter addition is only linear when both sides share hash
    #: functions; False for the comparison-based randomized sketches,
    #: which want *independent* coins per shard.  Meaningless when
    #: ``mergeable`` is False.
    merge_shares_seed: bool = False

    @property
    @abc.abstractmethod
    def n(self) -> int:
        """Number of elements currently summarized."""

    @abc.abstractmethod
    def update(self, value) -> None:
        """Insert one element from the stream."""

    def extend(self, values: Iterable) -> None:
        """Insert every element of ``values``, in order.

        ``values`` may be any iterable, including a numpy array — the
        batch fast paths operate on arrays directly, so feeding an
        ``np.ndarray`` avoids per-element conversion.  Subclasses with a
        batch-friendly structure override this with a vectorized bulk
        path; the default simply loops over :meth:`update`.  Either way
        the summary afterwards answers queries for the same stream (the
        deterministic summaries produce either bit-identical state or a
        state with the same ``eps`` guarantee; the randomized ones consume
        their RNG identically, so same-seed runs stay reproducible).
        """
        for value in values:
            self.update(value)

    @abc.abstractmethod
    def rank(self, value) -> float:
        """Estimate the rank of ``value``: the number of stream elements
        strictly smaller than ``value``."""

    @abc.abstractmethod
    def query(self, phi: float):
        """Return an approximate ``phi``-quantile of the stream so far.

        Raises:
            EmptySummaryError: if no elements have been inserted.
            InvalidParameterError: if ``phi`` is outside [0, 1].
        """

    def query_batch(self, phis: Sequence[float]) -> List:
        """Answer many quantile queries in one call.

        Semantically equivalent to ``[self.query(phi) for phi in phis]``
        (the default implementation is exactly that loop), but subclasses
        override it with a shared-work path: one prefix-sum or snapshot
        pass answers every ``phi``, so the per-query cost amortizes.  The
        harness's query phase goes through this method.

        Raises:
            EmptySummaryError: if no elements have been inserted.
            InvalidParameterError: if any ``phi`` is outside [0, 1].
        """
        return [self.query(phi) for phi in phis]

    def quantiles(self, phis: Sequence[float]) -> List:
        """Historical alias for :meth:`query_batch`."""
        return self.query_batch(phis)

    def cdf_points(self, count: int) -> List:
        """Return ``count`` evenly spaced quantiles, a staircase CDF sketch.

        Convenience for plotting and for distribution comparison; returns
        the ``i / (count + 1)`` quantiles for ``i = 1 .. count``.
        """
        if count < 1:
            raise InvalidParameterError(f"count must be >= 1, got {count!r}")
        return self.query_batch([i / (count + 1) for i in range(1, count + 1)])

    @abc.abstractmethod
    def size_words(self) -> int:
        """Current space usage in 4-byte words, per the paper's accounting."""

    def size_bytes(self) -> int:
        """Current space usage in bytes (``size_words() * 4``)."""
        return self.size_words() * WORD_BYTES

    def merge(self, other: "QuantileSketch") -> None:
        """Fold ``other`` into ``self`` (``other`` should be discarded).

        Afterwards ``self`` summarizes the concatenation of both streams
        with the algorithm's stated error guarantee.  The base
        implementation refuses: algorithms advertise merge support by
        overriding this method and setting ``mergeable = True``.

        Raises:
            UnmergeableSketchError: always, unless overridden.
            MergeError: (in overrides) when ``other`` has incompatible
                parameters.
        """
        raise UnmergeableSketchError(
            f"{self.name} does not support merging; pick a mergeable "
            "algorithm (see repro.core.registry.mergeable_algorithms())"
        )

    def _require_nonempty(self) -> None:
        if self.n <= 0:
            raise EmptySummaryError(
                f"{self.name}: cannot query an empty summary"
            )

    def _target_rank(self, phi: float) -> int:
        """The rank targeted by a ``phi``-quantile query: ``floor(phi * n)``
        clamped to ``[0, n - 1]``."""
        validate_phi(phi)
        self._require_nonempty()
        return min(self.n - 1, max(0, math.floor(phi * self.n)))

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} n={self.n} words={self.size_words()}>"


class TurnstileSketch(QuantileSketch):
    """A quantile summary that also supports deletions.

    In the turnstile model ``n`` counts the elements *currently remaining*
    (insertions minus deletions).  Implementations assume the stream is
    well-formed: no element's multiplicity ever goes negative.  Use
    :mod:`repro.streams.updates` to generate or validate such streams.
    """

    comparison_based = False

    @abc.abstractmethod
    def delete(self, value) -> None:
        """Remove one previously inserted occurrence of ``value``."""

    def apply(self, updates: Iterable) -> None:
        """Apply a sequence of ``(value, +1 | -1)`` update pairs."""
        for value, delta in updates:
            if delta == 1:
                self.update(value)
            elif delta == -1:
                self.delete(value)
            else:
                raise InvalidParameterError(
                    f"update delta must be +1 or -1, got {delta!r}"
                )


class MergeableSketch(abc.ABC):
    """Mixin for summaries supporting the mergeable-summary model [1].

    ``merge`` combines another summary *of the same type and parameters*
    into ``self``; afterwards ``self`` summarizes the concatenation of both
    streams with an unchanged error guarantee.

    Inheriting this mixin also sets the ``mergeable`` capability flag, so
    registry-level consumers discover the implementation without an
    isinstance ladder.
    """

    mergeable: bool = True

    @abc.abstractmethod
    def merge(self, other) -> None:
        """Fold ``other`` into ``self`` (``other`` should be discarded)."""
