"""Cached hash planes: precomputed bucket/sign tables for reduced universes.

The turnstile hot path spends almost all of its time re-evaluating the
k-wise polynomial hashes of :mod:`repro.sketches.hashing` — every
``update_batch`` call re-hashes every key for every row of every dyadic
level, even though a hash function is a *fixed* map once its
coefficients are drawn.  For the reduced universes the dyadic structure
feeds its level sketches (Section 3: level ``i`` hashes ``[0, u >> i)``),
the whole map fits in memory: a **plane** is the hash evaluated over
``arange(universe)`` once, after which batch ingest and the rank-query
prefix expansion become pure fancy-indexed gathers and ``np.add.at``
scatters over the precomputed table (the CSVec trick of caching bucket
and sign tables keyed by sketch shape).

Planes live in one bounded, process-wide LRU shared across sketch
instances.  Entries are keyed by the hash functions' *coefficients* (plus
range and universe) rather than by the seed the caller claims to have
used — sketches built from one seed draw identical coefficients, so
serve replicas, restored snapshots, and parallel workers running
``merge_shares_seed`` algorithms all hit the same entries, while two
different functions can never collide.  The cache holds only derived,
recomputable data: sketches never store plane arrays on themselves, so
snapshot envelopes stay plane-free by construction.

Cache traffic is metered through ``hashplan.cache.{hits,misses,
evictions}`` (preregistered in ``DEFAULT_INSTRUMENTS``); the lock is a
plain mutex held only for the OrderedDict bookkeeping — plane
*computation* happens outside the lock, and the disabled-metrics
overhead gate covers the lookup cost (``tests/obs/test_overhead.py``).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from contextlib import contextmanager
from typing import Dict, Iterator, Optional, Sequence, Tuple

import numpy as np

from repro.core.errors import InvalidParameterError
from repro.obs import metrics as obs_metrics
from repro.sketches.hashing import KWiseHash, SignHash

#: Largest reduced universe a plane is materialized for.  A bucket plane
#: is ``universe`` int32 cells per row and a sign plane ``universe`` int8
#: cells per row, so at the cap a 7-row Count-Sketch level costs ~2.3 MiB
#: — amortized after roughly one 64K-element chunk of hashing.
PLANE_UNIVERSE_MAX = 1 << 16

#: Default cache budget in bytes (plane payloads only).  At the default,
#: a full DCS/DCM inventory over 2**16 universes (all sketched levels of
#: several sketches) fits with room to spare; overflow evicts LRU-first.
DEFAULT_CACHE_BYTES = 128 * 1024 * 1024

#: Above this many elements a batch stops deduplicating keys up front
#: (``np.unique`` costs a sort; it only pays when the stream repeats).
#: Exposed for the blocked-repetition path in the sketches.
DEDUP_MIN_BATCH = 1024

#: Minimum batch size for the dyadic counts-fold path, where one sort is
#: amortized over every level of the structure (lower than
#: :data:`DEDUP_MIN_BATCH` because the aggregate is reused ``log2 u``
#: times and coarsens further at each level).
FOLD_MIN_BATCH = 512

PlaneKey = Tuple[object, ...]


class HashPlaneCache:
    """A bounded LRU of computed hash planes, keyed by hash identity.

    Args:
        max_bytes: total plane payload budget; least-recently-used
            entries are evicted once the budget is exceeded.  The cache
            never refuses an entry that fits the budget on its own.
    """

    def __init__(self, max_bytes: int = DEFAULT_CACHE_BYTES) -> None:
        if max_bytes < 1:
            raise InvalidParameterError(
                f"max_bytes must be >= 1, got {max_bytes!r}"
            )
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        self._entries: "OrderedDict[PlaneKey, np.ndarray]" = OrderedDict()
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- bookkeeping ----------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def nbytes(self) -> int:
        """Total bytes of cached plane payloads."""
        with self._lock:
            return self._bytes

    def clear(self) -> None:
        """Drop every entry (does not reset the hit/miss counters)."""
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    def stats(self) -> Dict[str, int]:
        """Point-in-time counters: hits, misses, evictions, entries."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "entries": len(self._entries),
                "bytes": self._bytes,
            }

    # -- the one hot method ---------------------------------------------

    def get(self, key: PlaneKey, compute) -> np.ndarray:
        """The plane for ``key``, computing (outside the lock) on miss.

        The lock guards only the OrderedDict bookkeeping; a miss
        releases it, computes the plane, then re-acquires to insert.
        Two threads racing on the same key may both compute — the planes
        are identical by construction, so last-write-wins is harmless
        and the hot path never blocks behind another key's hashing.
        """
        with self._lock:
            plane = self._entries.get(key)
            if plane is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                _meter("hits")
                return plane
            self.misses += 1
        _meter("misses")
        plane = compute()
        plane.setflags(write=False)
        with self._lock:
            evicted = 0
            if key not in self._entries:
                self._entries[key] = plane
                self._bytes += plane.nbytes
            while self._bytes > self.max_bytes and len(self._entries) > 1:
                _, dropped = self._entries.popitem(last=False)
                self._bytes -= dropped.nbytes
                self.evictions += 1
                evicted += 1
        if evicted:
            _meter("evictions", evicted)
        return plane


def _meter(event: str, value: int = 1) -> None:
    rec = obs_metrics.recorder()
    if rec.enabled:
        rec.inc(f"hashplan.cache.{event}", value)


# -- process-wide singleton and the enable switch -----------------------

_cache = HashPlaneCache()
_enabled = True


def cache() -> HashPlaneCache:
    """The process-wide plane cache."""
    return _cache


def configure(max_bytes: int) -> HashPlaneCache:
    """Replace the process-wide cache with a fresh one of ``max_bytes``."""
    global _cache
    _cache = HashPlaneCache(max_bytes)
    return _cache


def enabled() -> bool:
    """Whether the cached-plane fast paths are active."""
    return _enabled


def set_enabled(value: bool) -> None:
    """Globally enable/disable the plane fast paths (equivalence tests
    compare against the direct ``_poly_eval`` path by turning them off)."""
    global _enabled
    _enabled = bool(value)


@contextmanager
def disabled() -> Iterator[None]:
    """Context manager: force the direct hashing path within the block."""
    previous = _enabled
    set_enabled(False)
    try:
        yield
    finally:
        set_enabled(previous)


# -- plane construction -------------------------------------------------


def bucket_plane_key(
    hashes: Sequence[KWiseHash], universe: int
) -> PlaneKey:
    """Cache key for the stacked bucket plane of ``hashes`` over
    ``[0, universe)``.  Built from :meth:`KWiseHash.identity`, so any
    two sketches evaluating the same functions share one entry."""
    return ("bucket", universe, *(h.identity() for h in hashes))


def sign_plane_key(
    signs: Sequence[SignHash], universe: int
) -> PlaneKey:
    """Cache key for the stacked sign plane of ``signs`` over
    ``[0, universe)``."""
    return ("sign", universe, *(s.identity() for s in signs))


def _compute_bucket_plane(
    hashes: Sequence[KWiseHash], universe: int
) -> np.ndarray:
    domain = np.arange(universe, dtype=np.uint64)
    plane = np.empty((len(hashes), universe), dtype=np.int32)
    for i, h in enumerate(hashes):
        plane[i] = h(domain).astype(np.int32)
    return plane


def _compute_sign_plane(
    signs: Sequence[SignHash], universe: int
) -> np.ndarray:
    domain = np.arange(universe, dtype=np.uint64)
    plane = np.empty((len(signs), universe), dtype=np.int8)
    for i, s in enumerate(signs):
        plane[i] = s(domain).astype(np.int8)
    return plane


def bucket_planes(
    hashes: Sequence[KWiseHash], universe: int
) -> Optional[np.ndarray]:
    """The stacked ``(rows, universe)`` int32 bucket plane, or ``None``.

    ``None`` when planes are disabled or the universe exceeds
    :data:`PLANE_UNIVERSE_MAX` — callers fall through to the direct
    ``_poly_eval`` path.  Row ``i`` of the result satisfies
    ``plane[i, x] == hashes[i](x)`` for every ``x`` in the universe.
    """
    if not _enabled or not hashes or universe > PLANE_UNIVERSE_MAX:
        return None
    key = bucket_plane_key(hashes, universe)
    return _cache.get(key, lambda: _compute_bucket_plane(hashes, universe))


def sign_planes(
    signs: Sequence[SignHash], universe: int
) -> Optional[np.ndarray]:
    """The stacked ``(rows, universe)`` int8 sign plane, or ``None``.

    Same gating as :func:`bucket_planes`; row ``i`` satisfies
    ``plane[i, x] == signs[i](x)`` (values are -1/+1).
    """
    if not _enabled or not signs or universe > PLANE_UNIVERSE_MAX:
        return None
    key = sign_plane_key(signs, universe)
    return _cache.get(key, lambda: _compute_sign_plane(signs, universe))


# -- blocked repetition (large universes) -------------------------------


def aggregate_batch(
    keys: np.ndarray, deltas: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Unconditional aggregation into ``(unique_keys, summed_deltas)``.

    ``unique_keys`` is sorted strictly ascending; the summed deltas are
    exact int64 sums, so feeding the aggregate downstream is
    bit-identical to feeding the raw batch (integer addition commutes).
    """
    uniq, inverse = np.unique(keys, return_inverse=True)
    agg = np.zeros(uniq.size, dtype=np.int64)
    np.add.at(agg, inverse, deltas)
    return uniq, agg


def dedup_batch(
    keys: np.ndarray, deltas: np.ndarray
) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    """Aggregate a batch into ``(unique_keys, summed_deltas)`` when the
    batch repeats itself enough to pay for the sort; ``None`` otherwise.

    This is the blocked-repetition fallback for universes too large to
    materialize planes: the polynomial hashes are evaluated once per
    *unique* key per row (and the unique pass is shared across every row
    and both bucket and sign hashes), instead of once per stream
    element.  Integer addition is commutative, so feeding the aggregate
    is bit-identical to feeding the raw batch.  A strictly increasing
    batch is already an aggregate (the dyadic counts-fold path emits
    those) and skips the sort outright.
    """
    if not _enabled or keys.size < DEDUP_MIN_BATCH:
        return None
    if bool(np.all(keys[1:] > keys[:-1])):
        return None
    uniq, inverse = np.unique(keys, return_inverse=True)
    if uniq.size * 2 > keys.size:
        return None
    agg = np.zeros(uniq.size, dtype=np.int64)
    np.add.at(agg, inverse, deltas)
    return uniq, agg


def fold_level(
    cells: np.ndarray, deltas: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """One dyadic coarsening step over an aggregated, sorted cell list.

    Given unique ascending ``cells`` at level ``i`` with summed
    ``deltas``, returns the level-``i+1`` aggregate (``cells >> 1``,
    duplicates folded by integer addition).  Used by the dyadic
    structures to hash each stream block once and reuse the aggregation
    across every level — the polynomial structure of the level hashes is
    independent, but the *key multiset* at level ``i+1`` is a pure
    function of the level-``i`` aggregate.
    """
    shifted = cells >> 1
    if shifted.size <= 1:
        return shifted, deltas
    starts = np.flatnonzero(np.r_[True, shifted[1:] != shifted[:-1]])
    return shifted[starts], np.add.reduceat(deltas, starts)
