"""The Count-Min sketch of Cormode and Muthukrishnan [7].

A ``d x w`` array of counters.  Each row ``i`` owns a pairwise independent
hash ``h_i : [m] -> [w]``; an update ``(x, delta)`` adds ``delta`` to
``C[i, h_i(x)]`` in every row.  With non-negative frequencies the estimate
``min_i C[i, h_i(x)]`` never underestimates, and with ``w = O(1/eps)`` and
``d = O(log 1/delta)`` it overestimates by more than ``eps * n`` with
probability at most ``delta``.

This implementation supports negative deltas (the dyadic quantile
algorithms feed it turnstile streams); the *strict turnstile* assumption —
every true frequency stays non-negative — keeps the min estimator valid.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.errors import InvalidParameterError, MergeError
from repro.obs import metrics as obs_metrics
from repro.sketches import hashplan
from repro.sketches.hashing import ArrayLike, KWiseHash, make_rng


class CountMinSketch:
    """Count-Min frequency sketch over keys in ``[0, 2**32)``.

    Args:
        width: counters per row (``w``); controls the error ``~ n / w``.
        depth: number of rows (``d``); controls the failure probability.
        rng: numpy Generator for the hash coefficients (or ``seed=``).
        seed: convenience alternative to ``rng``.
        universe: optional exclusive key upper bound.  When the domain is
            small enough (:data:`repro.sketches.hashplan.PLANE_UNIVERSE_MAX`),
            batch updates and estimates run over cached hash planes —
            precomputed ``h_i(arange(universe))`` tables shared process-
            wide — instead of re-evaluating the polynomials per batch.
            The dyadic structures pass their per-level reduced universe.
    """

    #: Estimates are upper bounds (strict turnstile streams).
    biased_up = True

    def __init__(
        self,
        width: int,
        depth: int,
        rng: Optional[np.random.Generator] = None,
        seed: Optional[int] = None,
        universe: Optional[int] = None,
    ) -> None:
        if width < 1:
            raise InvalidParameterError(f"width must be >= 1, got {width!r}")
        if depth < 1:
            raise InvalidParameterError(f"depth must be >= 1, got {depth!r}")
        if universe is not None and universe < 1:
            raise InvalidParameterError(
                f"universe must be >= 1, got {universe!r}"
            )
        if rng is None:
            rng = make_rng(seed)
        self.width = width
        self.depth = depth
        self.universe = universe
        self._table = np.zeros((depth, width), dtype=np.int64)
        self._hashes = [KWiseHash(2, width, rng) for _ in range(depth)]

    def _bucket_planes(self) -> Optional[np.ndarray]:
        """The cached ``(depth, universe)`` bucket plane, or ``None``.

        Only derived data: the plane is recomputed from the hash
        coefficients on demand and never stored on the sketch, so
        snapshot envelopes stay plane-free.
        """
        if self.universe is None:
            return None
        return hashplan.bucket_planes(self._hashes, self.universe)

    def update(self, key: int, delta: int = 1) -> None:
        """Add ``delta`` to the frequency of ``key``."""
        for i, h in enumerate(self._hashes):
            self._table[i, h.hash_one(key)] += delta

    def update_batch(self, keys: ArrayLike, deltas: ArrayLike = 1) -> None:
        """Vectorized bulk update: ``deltas`` broadcasts against ``keys``.

        With a declared small ``universe`` the update is a pure gather +
        ``np.add.at`` scatter over the cached bucket plane (no hashing);
        otherwise repeated keys are folded up front when profitable
        (blocked repetition) and the rows fall through to the direct
        polynomial evaluation.  All three paths produce bit-identical
        tables: integer addition commutes.
        """
        keys = np.asarray(keys, dtype=np.uint64)
        deltas_arr = np.broadcast_to(
            np.asarray(deltas, dtype=np.int64), keys.shape
        )
        planes = self._bucket_planes()
        hashed = 0
        if planes is None:
            pair = hashplan.dedup_batch(keys, deltas_arr)
            if pair is not None:
                keys, deltas_arr = pair
            hashed = self.depth * int(keys.size)
        for i in range(self.depth):
            cols = planes[i][keys] if planes is not None \
                else self._hashes[i](keys)
            np.add.at(self._table[i], cols, deltas_arr)
        rec = obs_metrics.recorder()
        if rec.enabled:
            touched = self.depth * int(keys.size)
            rec.inc("sketches.row_updates", touched, sketch="countmin")
            rec.inc("sketches.hash_evals", hashed, sketch="countmin")

    def estimate(self, key: int) -> int:
        """Point estimate of the frequency of ``key`` (min over rows)."""
        return int(
            min(
                self._table[i, h.hash_one(key)]
                for i, h in enumerate(self._hashes)
            )
        )

    def estimate_batch(self, keys: ArrayLike) -> np.ndarray:
        """Vectorized point estimates for an array of keys.

        Reuses the same cached bucket plane the ingest path scatters
        over, so the rank-query prefix expansion never rehashes either.
        """
        keys = np.asarray(keys, dtype=np.uint64)
        planes = self._bucket_planes()
        rows = np.empty((self.depth,) + keys.shape, dtype=np.int64)
        for i in range(self.depth):
            cols = planes[i][keys] if planes is not None \
                else self._hashes[i](keys)
            rows[i] = self._table[i, cols]
        return rows.min(axis=0)

    def merge_compatible(self, other) -> bool:
        """Whether :meth:`merge` with ``other`` is well-defined: same
        shape *and* identical row-hash coefficients (build both sketches
        from one seed; the coefficients are compared, not trusted)."""
        return (
            isinstance(other, CountMinSketch)
            and (self.width, self.depth) == (other.width, other.depth)
            and all(
                mine.same_function(theirs)
                for mine, theirs in zip(self._hashes, other._hashes)
            )
        )

    def merge(self, other: "CountMinSketch") -> None:
        """Add another Count-Min table into this one (linearity).

        Valid only when both sketches evaluate identical row hashes —
        see :meth:`merge_compatible`.
        """
        if not self.merge_compatible(other):
            raise MergeError(
                "CountMinSketch merge requires equal shape and identical "
                "hash functions; build both sketches from the same seed"
            )
        self._table += other._table

    def variance_estimate(self) -> float:
        """A rough per-estimate variance proxy, for parity with
        :meth:`CountSketch.variance_estimate` (Count-Min is biased, so this
        is only a scale indicator: mean squared row mass over ``w``)."""
        sq = (self._table.astype(np.float64) ** 2).sum(axis=1)
        return float(sq.mean() / self.width)

    def size_words(self) -> int:
        """Space in 4-byte words: counters plus hash coefficients (each
        61-bit coefficient counted as two words)."""
        return self.width * self.depth + 2 * 2 * self.depth

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<CountMinSketch w={self.width} d={self.depth}>"
