"""k-wise independent hash families over the Mersenne prime ``2**61 - 1``.

The turnstile sketches need two kinds of hash functions (Section 3.1):

* a **pairwise independent** ``h : [u] -> [w]`` that spreads elements over
  the ``w`` counters of a sketch row, and
* a **4-wise independent** ``g : [u] -> {-1, +1}`` sign hash (Count-Sketch
  only), which makes each counter an unbiased estimator with bounded
  variance.

Both are degree-(k-1) polynomials with random coefficients modulo the
Mersenne prime ``p = 2**61 - 1`` — the textbook construction, which is
exactly k-wise independent.  Evaluation is vectorized with numpy: products
of a 61-bit accumulator by a 32-bit key are emulated in 64-bit arithmetic
by splitting the accumulator and folding with ``2**61 ≡ 1 (mod p)``.

Keys must fit in 32 bits (the paper's largest universe is ``2**32``); the
dyadic structure always hashes *reduced* universes, so this is never a
constraint in practice.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.errors import InvalidParameterError

#: The Mersenne prime 2**61 - 1 used as the field size.
MERSENNE_P = (1 << 61) - 1

_M61 = np.uint64(MERSENNE_P)
_SHIFT61 = np.uint64(61)
_LOW31 = np.uint64((1 << 31) - 1)
_LOW30 = np.uint64((1 << 30) - 1)
_SHIFT31 = np.uint64(31)
_SHIFT30 = np.uint64(30)

ArrayLike = Union[int, np.ndarray, Sequence[int]]


def _fold61(v: np.ndarray) -> np.ndarray:
    """Reduce ``v < 2**63`` modulo ``2**61 - 1`` (result may still be >= p,
    but is < 2**61 + 3; callers finish with a conditional subtract)."""
    return (v & _M61) + (v >> _SHIFT61)


def _finish_mod(v: np.ndarray) -> np.ndarray:
    """Final reduction after folding (``v`` is already < 2**62)."""
    return v % _M61


def mulmod61(a: ArrayLike, b: ArrayLike) -> np.ndarray:
    """Compute ``a * b mod (2**61 - 1)`` element-wise in uint64 arithmetic.

    Requires ``a < 2**61`` and ``b < 2**32``.  Both may be scalars or
    arrays (numpy broadcasting applies).
    """
    a = np.asarray(a, dtype=np.uint64)
    b = np.asarray(b, dtype=np.uint64)
    a_lo = a & _LOW31  # < 2**31
    a_hi = a >> _SHIFT31  # < 2**30
    # a*b = a_hi * b * 2**31 + a_lo * b; each partial product fits in 64 bits.
    t1 = _fold61(a_lo * b)  # a_lo*b < 2**63
    t2 = _finish_mod(_fold61(a_hi * b))  # (a_hi*b mod p) < 2**61
    # t2 * 2**31 mod p, folding with 2**61 ≡ 1 (mod p):
    t2_lo = t2 & _LOW30  # < 2**30
    t2_hi = t2 >> _SHIFT30  # < 2**31
    t2_shifted = t2_hi + (t2_lo << _SHIFT31)  # ≡ t2 * 2**31, < 2**61 + 2**31
    total = _fold61(t1 + t2_shifted)  # operands < 2**62, sum < 2**63
    return _finish_mod(total)


def _poly_eval(coeffs: np.ndarray, keys: np.ndarray) -> np.ndarray:
    """Horner evaluation of a polynomial mod p at 32-bit ``keys``.

    ``coeffs`` is highest-degree first; all coefficients are in ``[0, p)``.
    """
    acc = np.full(keys.shape, coeffs[0], dtype=np.uint64)
    for c in coeffs[1:]:
        acc = mulmod61(acc, keys)
        acc = _finish_mod(_fold61(acc + c))
    return acc


def _check_keys(keys: ArrayLike) -> np.ndarray:
    arr = np.asarray(keys, dtype=np.uint64)
    if arr.size and int(arr.max()) >= (1 << 32):
        raise InvalidParameterError(
            "hash keys must fit in 32 bits; reduce the universe first"
        )
    return arr


class KWiseHash:
    """An exactly k-wise independent hash function ``[2**32] -> [range_]``.

    A random degree-(k-1) polynomial over GF(p), reduced mod ``range_``.
    The mod-``range_`` step costs a negligible amount of independence
    (standard practice for sketch implementations).

    Args:
        k: independence (2 for pairwise, 4 for the sign hash).
        range_: output range; values land in ``[0, range_)``.
        rng: numpy Generator supplying the coefficients.
    """

    def __init__(self, k: int, range_: int, rng: np.random.Generator) -> None:
        if k < 1:
            raise InvalidParameterError(f"k must be >= 1, got {k!r}")
        if range_ < 1:
            raise InvalidParameterError(f"range_ must be >= 1, got {range_!r}")
        self.k = k
        self.range = range_
        # Leading coefficient non-zero keeps the polynomial degree exactly
        # k-1; the remaining coefficients are uniform in [0, p).
        lead = int(rng.integers(1, MERSENNE_P, dtype=np.int64))
        rest = rng.integers(0, MERSENNE_P, size=k - 1, dtype=np.int64)
        self._coeffs = np.array([lead, *rest.tolist()], dtype=np.uint64)
        self._range64 = np.uint64(range_)

    def __call__(self, keys: ArrayLike) -> np.ndarray:
        """Hash ``keys`` (scalar or array) into ``[0, range)``; returns an
        array of the broadcast shape (0-d for scalar input)."""
        arr = _check_keys(keys)
        return _poly_eval(self._coeffs, arr) % self._range64

    def hash_one(self, key: int) -> int:
        """Hash a single int key (convenience scalar wrapper)."""
        return int(self(np.uint64(key)))

    def same_function(self, other: "KWiseHash") -> bool:
        """Whether ``other`` computes the identical hash function.

        Counter-addition merges of hash sketches are only linear when
        both sides evaluate the same polynomials, so merge paths compare
        the actual coefficients — not just the seed the caller claims to
        have used.
        """
        return (
            isinstance(other, KWiseHash)
            and self.k == other.k
            and self.range == other.range
            and bool(np.array_equal(self._coeffs, other._coeffs))
        )

    def identity(self) -> Tuple[int, ...]:
        """A value identity for this function: range plus coefficients.

        Two instances with equal identity compute the same map (the
        :meth:`same_function` relation as a hashable tuple).  The hash
        plane cache (:mod:`repro.sketches.hashplan`) keys its entries on
        this, so sketches built from one seed — serve replicas, restored
        snapshots, parallel shards of ``merge_shares_seed`` algorithms —
        share cached planes while distinct functions never collide.
        """
        return (self.range, *(int(c) for c in self._coeffs))


class SignHash:
    """A 4-wise independent sign hash ``[2**32] -> {-1, +1}``.

    The low bit of a 4-wise independent value is an unbiased ±1 with the
    4-wise independence needed by the Count-Sketch variance analysis.
    """

    def __init__(self, rng: np.random.Generator, k: int = 4) -> None:
        self._hash = KWiseHash(k, 2, rng)

    def __call__(self, keys: ArrayLike) -> np.ndarray:
        """Return an int64 array of +1/-1 signs for ``keys``."""
        bits = self._hash(keys).astype(np.int64)
        return 2 * bits - 1

    def sign_one(self, key: int) -> int:
        """Sign of a single int key."""
        return int(self(np.uint64(key)))

    def same_function(self, other: "SignHash") -> bool:
        """Whether ``other`` computes the identical sign hash."""
        return isinstance(other, SignHash) and self._hash.same_function(
            other._hash
        )

    def identity(self) -> Tuple[int, ...]:
        """Value identity of the underlying 4-wise hash (see
        :meth:`KWiseHash.identity`)."""
        return self._hash.identity()


def make_rng(seed: Optional[int]) -> np.random.Generator:
    """The library-wide way to build a numpy Generator from a seed.

    ``None`` yields OS entropy; an int yields a reproducible stream.
    """
    return np.random.default_rng(seed)
