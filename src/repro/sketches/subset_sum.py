"""The random subset-sum sketch of Gilbert, Kotidis, Muthukrishnan and
Strauss [13] — the first turnstile quantile sketch.

Each counter owns a pairwise independent membership hash ``s : [m] ->
{0, 1}`` (each key included with probability 1/2) and stores the total
frequency of included keys.  Conditioned on ``x`` being included, the
counter's expectation is ``f_x + (T - f_x) / 2`` where ``T`` is the total
mass, so ``2 * C - T`` is an unbiased estimator of ``f_x``; symmetrically
``T - 2 * C`` is unbiased when ``x`` is excluded.  Averaging ``reps``
counters and taking a median over ``groups`` gives the usual
median-of-means concentration.

The variance per counter is ``Theta(F_2)`` — not ``F_2 / w`` as for the
Count-Sketch — which is why RSS needs ``O(1/eps**2)`` counters and loses
badly in the experiments (the paper drops it from most figures; we keep it
implemented for completeness and for Table 1).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.errors import InvalidParameterError, MergeError
from repro.sketches.hashing import ArrayLike, KWiseHash, make_rng


class SubsetSumSketch:
    """Random subset-sum frequency estimator over keys in ``[0, 2**32)``.

    Args:
        groups: number of independent groups (median is taken over these).
        reps: counters per group (mean is taken within a group).
        rng: numpy Generator for hash coefficients (or ``seed=``).
        seed: convenience alternative to ``rng``.
    """

    biased_up = False

    def __init__(
        self,
        groups: int,
        reps: int,
        rng: Optional[np.random.Generator] = None,
        seed: Optional[int] = None,
    ) -> None:
        if groups < 1:
            raise InvalidParameterError(f"groups must be >= 1, got {groups!r}")
        if reps < 1:
            raise InvalidParameterError(f"reps must be >= 1, got {reps!r}")
        if rng is None:
            rng = make_rng(seed)
        self.groups = groups
        self.reps = reps
        self._counters = np.zeros((groups, reps), dtype=np.int64)
        self._total = 0
        self._members = [
            [KWiseHash(2, 2, rng) for _ in range(reps)] for _ in range(groups)
        ]

    def update(self, key: int, delta: int = 1) -> None:
        """Add ``delta`` to the frequency of ``key``."""
        self._total += delta
        for g in range(self.groups):
            for j in range(self.reps):
                if self._members[g][j].hash_one(key):
                    self._counters[g, j] += delta

    def update_batch(self, keys: ArrayLike, deltas: ArrayLike = 1) -> None:
        """Vectorized bulk update."""
        keys = np.asarray(keys, dtype=np.uint64)
        deltas = np.broadcast_to(
            np.asarray(deltas, dtype=np.int64), keys.shape
        )
        self._total += int(deltas.sum())
        for g in range(self.groups):
            for j in range(self.reps):
                included = self._members[g][j](keys).astype(bool)
                self._counters[g, j] += int(deltas[included].sum())

    def estimate(self, key: int) -> int:
        """Median-of-means unbiased point estimate of ``key``'s frequency."""
        return int(self.estimate_batch(np.uint64([key]))[0])

    def estimate_batch(self, keys: ArrayLike) -> np.ndarray:
        """Vectorized point estimates for an array of keys."""
        keys = np.asarray(keys, dtype=np.uint64)
        means = np.empty((self.groups,) + keys.shape, dtype=np.float64)
        for g in range(self.groups):
            acc = np.zeros(keys.shape, dtype=np.float64)
            for j in range(self.reps):
                included = self._members[g][j](keys).astype(bool)
                counter = float(self._counters[g, j])
                est_in = 2.0 * counter - self._total
                est_out = self._total - 2.0 * counter
                acc += np.where(included, est_in, est_out)
            means[g] = acc / self.reps
        return np.rint(np.median(means, axis=0)).astype(np.int64)

    def merge_compatible(self, other) -> bool:
        """Whether :meth:`merge` with ``other`` is well-defined: same
        shape *and* identical membership-hash coefficients (build both
        sketches from one seed; coefficients are compared, not
        trusted)."""
        return (
            isinstance(other, SubsetSumSketch)
            and (self.groups, self.reps) == (other.groups, other.reps)
            and all(
                self._members[g][j].same_function(other._members[g][j])
                for g in range(self.groups)
                for j in range(self.reps)
            )
        )

    def merge(self, other: "SubsetSumSketch") -> None:
        """Add another subset-sum sketch into this one (linearity).

        Valid only when both sketches draw identical membership hashes —
        see :meth:`merge_compatible`.
        """
        if not self.merge_compatible(other):
            raise MergeError(
                "SubsetSumSketch merge requires equal shape and identical "
                "membership hashes; build both sketches from the same seed"
            )
        self._counters += other._counters
        self._total += other._total

    def variance_estimate(self) -> float:
        """Rough variance proxy: empirical variance of ``2C - T`` across
        counters (each is an unbiased estimator of *some* frequency, and
        their spread tracks ``F_2``)."""
        ests = 2.0 * self._counters.astype(np.float64) - self._total
        return float(ests.var() / self.reps) if ests.size > 1 else 0.0

    def size_words(self) -> int:
        """Space in 4-byte words: counters, the total, and hash coefficients
        (two 61-bit coefficients = four words per membership hash)."""
        return self.groups * self.reps * (1 + 4) + 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<SubsetSumSketch groups={self.groups} reps={self.reps}>"
