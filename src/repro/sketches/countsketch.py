"""The Count-Sketch of Charikar, Chen and Farach-Colton [5].

Like Count-Min, a ``d x w`` counter array with a pairwise independent
``h_i : [m] -> [w]`` per row — but each row also owns a 4-wise independent
sign hash ``g_i : [m] -> {-1, +1}``, and updates add ``g_i(x) * delta``.
The row estimate ``g_i(x) * C[i, h_i(x)]`` is *unbiased* with variance
``F_2 / w``; the returned estimate is the median over rows.

Unbiasedness is what makes the Count-Sketch the right brick for dyadic
quantiles (Section 3.1): summing ``log u`` unbiased estimates lets the
errors partially cancel, which the paper's new analysis turns into a
``sqrt(log u)`` factor instead of ``log u``.

The sketch also exposes the AMS variance proxy used by the OLS
post-processing step (Section 3.2.4): the sum of squared counters in one
row estimates ``F_2``, so ``F_2 / w`` estimates the per-row estimator
variance.  Post-processing only needs variances up to a common scale.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.errors import InvalidParameterError, MergeError
from repro.obs import metrics as obs_metrics
from repro.sketches import hashplan
from repro.sketches.hashing import ArrayLike, KWiseHash, SignHash, make_rng


class CountSketch:
    """Count-Sketch frequency estimator over keys in ``[0, 2**32)``.

    Args:
        width: counters per row (``w``); row variance is ``~ F_2 / w``.
        depth: number of rows (``d``), odd recommended (median of ``d``).
        rng: numpy Generator for hash coefficients (or ``seed=``).
        seed: convenience alternative to ``rng``.
        universe: optional exclusive key upper bound.  Small domains
            (:data:`repro.sketches.hashplan.PLANE_UNIVERSE_MAX`) route
            batch updates and estimates through cached bucket *and* sign
            planes instead of re-evaluating the polynomials per batch;
            the dyadic structures pass their per-level reduced universe.
    """

    biased_up = False

    def __init__(
        self,
        width: int,
        depth: int,
        rng: Optional[np.random.Generator] = None,
        seed: Optional[int] = None,
        universe: Optional[int] = None,
    ) -> None:
        if width < 1:
            raise InvalidParameterError(f"width must be >= 1, got {width!r}")
        if depth < 1:
            raise InvalidParameterError(f"depth must be >= 1, got {depth!r}")
        if universe is not None and universe < 1:
            raise InvalidParameterError(
                f"universe must be >= 1, got {universe!r}"
            )
        if rng is None:
            rng = make_rng(seed)
        self.width = width
        self.depth = depth
        self.universe = universe
        self._table = np.zeros((depth, width), dtype=np.int64)
        self._hashes = [KWiseHash(2, width, rng) for _ in range(depth)]
        self._signs = [SignHash(rng) for _ in range(depth)]

    def _planes(self) -> tuple:
        """``(bucket_plane, sign_plane)`` from the cache, or ``(None,
        None)``.  Derived data only — never stored on the sketch, so
        snapshot envelopes stay plane-free."""
        if self.universe is None:
            return None, None
        buckets = hashplan.bucket_planes(self._hashes, self.universe)
        if buckets is None:
            return None, None
        return buckets, hashplan.sign_planes(self._signs, self.universe)

    def update(self, key: int, delta: int = 1) -> None:
        """Add ``delta`` to the frequency of ``key``."""
        for i in range(self.depth):
            col = self._hashes[i].hash_one(key)
            self._table[i, col] += self._signs[i].sign_one(key) * delta

    def update_batch(self, keys: ArrayLike, deltas: ArrayLike = 1) -> None:
        """Vectorized bulk update: ``deltas`` broadcasts against ``keys``.

        With a declared small ``universe`` each row is a gather over the
        cached bucket/sign planes plus one ``np.add.at`` scatter — no
        hashing; large universes fold repeated keys when profitable
        (blocked repetition) and fall through to direct evaluation.
        Both paths are bit-identical to the naive one: the sign gather
        yields the same ±1 values and integer addition commutes.
        """
        keys = np.asarray(keys, dtype=np.uint64)
        deltas_arr = np.broadcast_to(
            np.asarray(deltas, dtype=np.int64), keys.shape
        )
        buckets, sign_plane = self._planes()
        hashed = 0
        if buckets is None:
            pair = hashplan.dedup_batch(keys, deltas_arr)
            if pair is not None:
                keys, deltas_arr = pair
            hashed = 2 * self.depth * int(keys.size)
        for i in range(self.depth):
            if buckets is not None:
                cols = buckets[i][keys]
                signed = sign_plane[i][keys] * deltas_arr
            else:
                cols = self._hashes[i](keys)
                signed = self._signs[i](keys) * deltas_arr
            np.add.at(self._table[i], cols, signed)
        rec = obs_metrics.recorder()
        if rec.enabled:
            touched = self.depth * int(keys.size)
            rec.inc("sketches.row_updates", touched, sketch="countsketch")
            # Each row evaluates both the bucket hash and the sign hash
            # (zero on the plane path — that is the point).
            rec.inc("sketches.hash_evals", hashed, sketch="countsketch")

    def estimate(self, key: int) -> int:
        """Point estimate of the frequency of ``key``: median over rows of
        the signed counters."""
        vals = [
            self._signs[i].sign_one(key)
            * int(self._table[i, self._hashes[i].hash_one(key)])
            for i in range(self.depth)
        ]
        return int(np.median(vals))

    def estimate_batch(self, keys: ArrayLike) -> np.ndarray:
        """Vectorized point estimates for an array of keys.

        Reuses the same cached bucket/sign planes the ingest path uses,
        so the rank-query prefix expansion never rehashes either.
        """
        keys = np.asarray(keys, dtype=np.uint64)
        buckets, sign_plane = self._planes()
        rows = np.empty((self.depth,) + keys.shape, dtype=np.int64)
        for i in range(self.depth):
            if buckets is not None:
                rows[i] = sign_plane[i][keys] * self._table[
                    i, buckets[i][keys]
                ]
            else:
                rows[i] = self._signs[i](keys) * self._table[
                    i, self._hashes[i](keys)
                ]
        return np.median(rows, axis=0).astype(np.int64)

    def merge_compatible(self, other) -> bool:
        """Whether :meth:`merge` with ``other`` is well-defined: same
        shape *and* identical bucket and sign hash coefficients (build
        both sketches from one seed; coefficients are compared, not
        trusted)."""
        return (
            isinstance(other, CountSketch)
            and (self.width, self.depth) == (other.width, other.depth)
            and all(
                mine.same_function(theirs)
                for mine, theirs in zip(self._hashes, other._hashes)
            )
            and all(
                mine.same_function(theirs)
                for mine, theirs in zip(self._signs, other._signs)
            )
        )

    def merge(self, other: "CountSketch") -> None:
        """Add another Count-Sketch table into this one (linearity).

        Valid only when both sketches evaluate identical bucket *and*
        sign hashes — see :meth:`merge_compatible`.
        """
        if not self.merge_compatible(other):
            raise MergeError(
                "CountSketch merge requires equal shape and identical "
                "hash functions; build both sketches from the same seed"
            )
        self._table += other._table

    def variance_estimate(self) -> float:
        """AMS estimate of the single-row estimator variance ``F_2 / w``.

        Averaged over rows for stability.  The OLS post-processing step is
        scale-invariant, so the (unknown) variance reduction from taking a
        median of ``d`` rows does not need to be modeled (Section 3.2.4).
        """
        sq = (self._table.astype(np.float64) ** 2).sum(axis=1)
        return float(sq.mean() / self.width)

    def size_words(self) -> int:
        """Space in 4-byte words: counters plus hash coefficients (each
        61-bit coefficient counted as two words; sign hashes are degree-3
        polynomials, i.e. 4 coefficients)."""
        return self.width * self.depth + (2 + 4) * 2 * self.depth

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<CountSketch w={self.width} d={self.depth}>"
