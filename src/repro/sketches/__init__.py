"""Frequency-estimation sketches and hash families (turnstile substrate)."""

from repro.sketches.countmin import CountMinSketch
from repro.sketches.countsketch import CountSketch
from repro.sketches.exact_counter import ExactCounter
from repro.sketches.hashing import (
    KWiseHash,
    MERSENNE_P,
    SignHash,
    make_rng,
    mulmod61,
)
from repro.sketches.subset_sum import SubsetSumSketch

__all__ = [
    "CountMinSketch",
    "CountSketch",
    "ExactCounter",
    "KWiseHash",
    "MERSENNE_P",
    "SignHash",
    "SubsetSumSketch",
    "make_rng",
    "mulmod61",
]
