"""Dense exact frequency counters for small (reduced) universes.

Section 3 of the paper: "if the reduced universe size ``u / 2**i`` is
smaller than the sketch size, we should maintain the frequencies exactly,
rather than using a sketch".  This class is that exact store, with the same
update/estimate surface as the sketches so the dyadic structure can treat
both uniformly.  Exact levels have variance zero, which is what lets the
OLS post-processing anchor its subtrees (Definition 1's ``sigma_i = 0``
rows).
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import (
    InvalidParameterError,
    MergeError,
    UniverseOverflowError,
)
from repro.sketches.hashing import ArrayLike


class ExactCounter:
    """Exact frequencies for keys in ``[0, universe)`` via a dense array."""

    biased_up = False

    def __init__(self, universe: int) -> None:
        if universe < 1:
            raise InvalidParameterError(
                f"universe must be >= 1, got {universe!r}"
            )
        self.universe = universe
        self._counts = np.zeros(universe, dtype=np.int64)

    def update(self, key: int, delta: int = 1) -> None:
        """Add ``delta`` to the frequency of ``key``."""
        if not (0 <= key < self.universe):
            raise UniverseOverflowError(
                f"key {key!r} outside universe [0, {self.universe})"
            )
        self._counts[key] += delta

    def update_batch(self, keys: ArrayLike, deltas: ArrayLike = 1) -> None:
        """Vectorized bulk update."""
        keys = np.asarray(keys, dtype=np.int64)
        if keys.size and (keys.min() < 0 or keys.max() >= self.universe):
            raise UniverseOverflowError(
                f"keys outside universe [0, {self.universe})"
            )
        deltas = np.broadcast_to(
            np.asarray(deltas, dtype=np.int64), keys.shape
        )
        np.add.at(self._counts, keys, deltas)

    def estimate(self, key: int) -> int:
        """The exact frequency of ``key``."""
        if not (0 <= key < self.universe):
            raise UniverseOverflowError(
                f"key {key!r} outside universe [0, {self.universe})"
            )
        return int(self._counts[key])

    def estimate_batch(self, keys: ArrayLike) -> np.ndarray:
        """Exact frequencies for an array of keys."""
        return self._counts[np.asarray(keys, dtype=np.int64)]

    def merge_compatible(self, other) -> bool:
        """Whether :meth:`merge` with ``other`` is well-defined."""
        return (
            isinstance(other, ExactCounter)
            and other.universe == self.universe
        )

    def merge(self, other: "ExactCounter") -> None:
        """Add another counter array over the same universe into this one."""
        if not self.merge_compatible(other):
            raise MergeError(
                f"cannot merge {type(other).__name__} into ExactCounter "
                f"over universe {self.universe}"
            )
        self._counts += other._counts

    def variance_estimate(self) -> float:
        """Exact counts have zero variance."""
        return 0.0

    def prefix_sums(self) -> np.ndarray:
        """Exclusive prefix sums: entry ``k`` is the total frequency of keys
        ``< k`` (length ``universe + 1``).  Used for fast rank queries on
        fully-exact levels."""
        out = np.zeros(self.universe + 1, dtype=np.int64)
        np.cumsum(self._counts, out=out[1:])
        return out

    def size_words(self) -> int:
        """Space in 4-byte words: one counter per universe element."""
        return self.universe

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ExactCounter universe={self.universe}>"
